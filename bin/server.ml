(* doradd-server: the TCP front end as a standalone process.

   Binds the framed RPC server (lib/net) over the chosen backend and
   runs until SIGINT/SIGTERM, then drains — every sequenced request
   executes and is answered — and prints the connection/frame counters.
   Pair with loadgen.exe from another process for the open-loop
   latency experiments (EXPERIMENTS.md).

   With --node-id the process joins a replication cluster instead
   (lib/repl): --primary makes it serve and ship its WAL; otherwise it
   follows whatever primary welcomes it, doubles as a read replica, and
   stands for election when the primary goes quiet. *)

module Net = Doradd_net
module Repl = Doradd_repl

let make_backend backend_name n_keys warehouses () =
  match backend_name with
  | "kv" -> Ok (Net.Backend.kv ~n_keys ())
  | "tpcc" ->
    Ok
      (Net.Backend.tpcc ~config:{ Net.Backend.small_tpcc_config with warehouses } ())
  | other -> Error (Printf.sprintf "unknown backend %S (kv|tpcc)" other)

let parse_addr s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "bad address %S (want HOST:PORT)" s)
  | Some i -> (
    match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
    | None -> Error (Printf.sprintf "bad port in %S" s)
    | Some p -> Ok (String.sub s 0 i, p))

let parse_peers s =
  if s = "" then Ok []
  else
    String.split_on_char ',' s
    |> List.fold_left
         (fun acc item ->
           match acc with
           | Error _ as e -> e
           | Ok acc -> (
             match String.index_opt item '@' with
             | None -> Error (Printf.sprintf "bad peer %S (want ID@HOST:PORT)" item)
             | Some i -> (
               match
                 ( int_of_string_opt (String.sub item 0 i),
                   parse_addr (String.sub item (i + 1) (String.length item - i - 1)) )
               with
               | Some id, Ok (h, p) -> Ok ((id, h, p) :: acc)
               | None, _ -> Error (Printf.sprintf "bad peer id in %S" item)
               | _, Error e -> Error e)))
         (Ok [])
    |> Result.map List.rev

let install_stop () =
  let stop_requested = Atomic.make false in
  let request_stop _ = Atomic.set stop_requested true in
  ignore (Sys.signal Sys.sigint (Sys.Signal_handle request_stop));
  ignore (Sys.signal Sys.sigterm (Sys.Signal_handle request_stop));
  stop_requested

let run_replicated ~host ~port ~make_backend ~shards ~workers_per_shard ~data_dir
    ~no_fsync ~node_id ~repl_port ~backup_of ~peers ~sync_replicas ~heartbeat_ms
    ~election_timeout_ms ~primary =
  let cfg =
    Repl.Node.make_config ~host ~client_port:port ~repl_port ?backup_of ~peers
      ~shards ~workers_per_shard ~fsync:(not no_fsync) ~sync_replicas
      ~heartbeat_s:(float_of_int heartbeat_ms /. 1000.)
      ~election_timeout_s:(float_of_int election_timeout_ms /. 1000.)
      ~initial_role:(if primary then `Primary else `Backup)
      ~node_id ~data_dir ()
  in
  let node = Repl.Node.start cfg make_backend in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Repl.Node.client_port node = 0 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  Printf.printf
    "doradd-server: node %d (%s) on %s — clients %d, replication %d, epoch %d, data %s\n%!"
    node_id
    (Repl.Node.role_to_string (Repl.Node.role node))
    host (Repl.Node.client_port node) (Repl.Node.repl_port node)
    (Repl.Node.epoch node) data_dir;
  let stop_requested = install_stop () in
  let last_role = ref (Repl.Node.role node) in
  while not (Atomic.get stop_requested) do
    Unix.sleepf 0.1;
    let r = Repl.Node.role node in
    if r <> !last_role then begin
      last_role := r;
      Printf.printf "doradd-server: node %d is now %s (epoch %d)\n%!" node_id
        (Repl.Node.role_to_string r) (Repl.Node.epoch node)
    end
  done;
  Printf.printf "doradd-server: node %d stopping...\n%!" node_id;
  Repl.Node.stop node;
  Printf.printf
    "doradd-server: node %d stopped as %s, epoch %d, durable %d, digest %d\n%!"
    node_id
    (Repl.Node.role_to_string (Repl.Node.role node))
    (Repl.Node.epoch node) (Repl.Node.durable node) (Repl.Node.digest node);
  `Ok ()

let run host port backend_name shards workers_per_shard durable no_fsync n_keys
    warehouses node_id repl_port backup_of peers sync_replicas heartbeat_ms
    election_timeout_ms primary =
  match make_backend backend_name n_keys warehouses () with
  | Error msg -> `Error (false, msg)
  | Ok _ when node_id >= 0 -> (
    match (durable, parse_peers peers, Option.map parse_addr backup_of) with
    | None, _, _ ->
      `Error (false, "replicated mode needs --durable DIR as the node's data dir")
    | _, Error e, _ | _, _, Some (Error e) -> `Error (false, e)
    | Some data_dir, Ok peers, backup_of ->
      let backup_of = Option.map Result.get_ok backup_of in
      (* The node rebuilds its backend from scratch when log
         reconciliation truncates a divergent suffix — hence a factory,
         validated once above. *)
      let make_backend () =
        Result.get_ok (make_backend backend_name n_keys warehouses ())
      in
      run_replicated ~host ~port ~make_backend ~shards ~workers_per_shard ~data_dir
        ~no_fsync ~node_id ~repl_port ~backup_of ~peers ~sync_replicas
        ~heartbeat_ms ~election_timeout_ms ~primary)
  | Ok backend ->
    let server =
      Net.Server.start
        {
          Net.Server.host;
          port;
          shards;
          workers_per_shard;
          wal_dir = durable;
          wal_fsync = not no_fsync;
        }
        backend
    in
    Printf.printf "doradd-server: %s backend on %s:%d (%d shards%s)\n%!"
      backend.Net.Backend.name host (Net.Server.port server) shards
      (match durable with
      | Some dir -> Printf.sprintf ", durable in %s" dir
      | None -> "");
    let stop_requested = install_stop () in
    while not (Atomic.get stop_requested) do
      Unix.sleepf 0.2
    done;
    Printf.printf "doradd-server: draining...\n%!";
    Net.Server.stop server;
    let s = Net.Server.stats server in
    Printf.printf
      "doradd-server: %d conns, %d requests in, %d replies out, %d malformed, %d \
       framing errors, %d torn, %d dropped replies\n\
       doradd-server: state digest %d over %d logged requests\n%!"
      s.Net.Server.accepted s.Net.Server.frames_in s.Net.Server.replies_out
      s.Net.Server.malformed s.Net.Server.framing_errors s.Net.Server.torn_disconnects
      s.Net.Server.dropped_replies (Net.Server.digest server)
      (Array.length (Net.Server.request_log server));
    `Ok ()

open Cmdliner

let host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address.")

let port_arg =
  Arg.(value & opt int 7477 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Listen port (0 = ephemeral).")

let backend_arg =
  Arg.(value & opt string "kv" & info [ "backend" ] ~docv:"NAME" ~doc:"Backend: kv or tpcc.")

let shards_arg =
  Arg.(value & opt int 2 & info [ "shards" ] ~docv:"N" ~doc:"Dispatcher pipelines.")

let workers_arg =
  Arg.(
    value & opt int 1
    & info [ "workers-per-shard" ] ~docv:"N" ~doc:"Worker domains per shard.")

let durable_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "durable" ] ~docv:"DIR"
        ~doc:"Durable mode: group-commit every request to a WAL in $(docv) before delivery.")

let no_fsync_arg =
  Arg.(
    value & flag
    & info [ "no-fsync" ] ~doc:"Keep WAL semantics but skip the physical fsync.")

let keys_arg =
  Arg.(value & opt int 65_536 & info [ "keys" ] ~docv:"N" ~doc:"KV backend: keyspace size.")

let warehouses_arg =
  Arg.(
    value & opt int 2 & info [ "warehouses" ] ~docv:"N" ~doc:"TPCC backend: warehouse count.")

let node_id_arg =
  Arg.(
    value & opt int (-1)
    & info [ "node-id" ] ~docv:"ID"
        ~doc:"Join a replication cluster as node $(docv) (needs --durable).")

let repl_port_arg =
  Arg.(
    value & opt int 0
    & info [ "repl-port" ] ~docv:"PORT"
        ~doc:"Replication/election listen port (0 = ephemeral).")

let backup_of_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "backup-of" ] ~docv:"HOST:PORT"
        ~doc:"Replication address to try first when following.")

let peers_arg =
  Arg.(
    value & opt string ""
    & info [ "peers" ] ~docv:"ID@HOST:PORT,..."
        ~doc:"Every other cluster member's replication address.")

let sync_replicas_arg =
  Arg.(
    value & opt int 1
    & info [ "sync-replicas" ] ~docv:"K"
        ~doc:"Acks required before a write commits (0 = async replication).")

let heartbeat_arg =
  Arg.(
    value & opt int 50
    & info [ "heartbeat-ms" ] ~docv:"MS" ~doc:"Primary heartbeat interval.")

let election_timeout_arg =
  Arg.(
    value & opt int 500
    & info [ "election-timeout-ms" ] ~docv:"MS"
        ~doc:"Silence before a backup stands for election.")

let primary_arg =
  Arg.(
    value & flag
    & info [ "primary" ] ~doc:"Start as the cluster's initial primary.")

let cmd =
  let doc = "Serve the DORADD deterministic runtime over TCP" in
  Cmd.v
    (Cmd.info "doradd-server" ~version:"1.0.0" ~doc)
    Term.(
      ret
        (const run $ host_arg $ port_arg $ backend_arg $ shards_arg $ workers_arg
       $ durable_arg $ no_fsync_arg $ keys_arg $ warehouses_arg $ node_id_arg
       $ repl_port_arg $ backup_of_arg $ peers_arg $ sync_replicas_arg
       $ heartbeat_arg $ election_timeout_arg $ primary_arg))

let () = exit (Cmd.eval cmd)

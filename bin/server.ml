(* doradd-server: the TCP front end as a standalone process.

   Binds the framed RPC server (lib/net) over the chosen backend and
   runs until SIGINT/SIGTERM, then drains — every sequenced request
   executes and is answered — and prints the connection/frame counters.
   Pair with loadgen.exe from another process for the open-loop
   latency experiments (EXPERIMENTS.md). *)

module Net = Doradd_net

let run host port backend_name shards workers_per_shard durable no_fsync n_keys
    warehouses =
  let backend =
    match backend_name with
    | "kv" -> Ok (Net.Backend.kv ~n_keys ())
    | "tpcc" ->
      Ok
        (Net.Backend.tpcc
           ~config:{ Net.Backend.small_tpcc_config with warehouses }
           ())
    | other -> Error (Printf.sprintf "unknown backend %S (kv|tpcc)" other)
  in
  match backend with
  | Error msg -> `Error (false, msg)
  | Ok backend ->
    let server =
      Net.Server.start
        {
          Net.Server.host;
          port;
          shards;
          workers_per_shard;
          wal_dir = durable;
          wal_fsync = not no_fsync;
        }
        backend
    in
    Printf.printf "doradd-server: %s backend on %s:%d (%d shards%s)\n%!"
      backend.Net.Backend.name host (Net.Server.port server) shards
      (match durable with
      | Some dir -> Printf.sprintf ", durable in %s" dir
      | None -> "");
    let stop_requested = Atomic.make false in
    let request_stop _ = Atomic.set stop_requested true in
    ignore (Sys.signal Sys.sigint (Sys.Signal_handle request_stop));
    ignore (Sys.signal Sys.sigterm (Sys.Signal_handle request_stop));
    while not (Atomic.get stop_requested) do
      Unix.sleepf 0.2
    done;
    Printf.printf "doradd-server: draining...\n%!";
    Net.Server.stop server;
    let s = Net.Server.stats server in
    Printf.printf
      "doradd-server: %d conns, %d requests in, %d replies out, %d malformed, %d \
       framing errors, %d torn, %d dropped replies\n\
       doradd-server: state digest %d over %d logged requests\n%!"
      s.Net.Server.accepted s.Net.Server.frames_in s.Net.Server.replies_out
      s.Net.Server.malformed s.Net.Server.framing_errors s.Net.Server.torn_disconnects
      s.Net.Server.dropped_replies (Net.Server.digest server)
      (Array.length (Net.Server.request_log server));
    `Ok ()

open Cmdliner

let host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address.")

let port_arg =
  Arg.(value & opt int 7477 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Listen port (0 = ephemeral).")

let backend_arg =
  Arg.(value & opt string "kv" & info [ "backend" ] ~docv:"NAME" ~doc:"Backend: kv or tpcc.")

let shards_arg =
  Arg.(value & opt int 2 & info [ "shards" ] ~docv:"N" ~doc:"Dispatcher pipelines.")

let workers_arg =
  Arg.(
    value & opt int 1
    & info [ "workers-per-shard" ] ~docv:"N" ~doc:"Worker domains per shard.")

let durable_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "durable" ] ~docv:"DIR"
        ~doc:"Durable mode: group-commit every request to a WAL in $(docv) before delivery.")

let no_fsync_arg =
  Arg.(
    value & flag
    & info [ "no-fsync" ] ~doc:"Keep WAL semantics but skip the physical fsync.")

let keys_arg =
  Arg.(value & opt int 65_536 & info [ "keys" ] ~docv:"N" ~doc:"KV backend: keyspace size.")

let warehouses_arg =
  Arg.(
    value & opt int 2 & info [ "warehouses" ] ~docv:"N" ~doc:"TPCC backend: warehouse count.")

let cmd =
  let doc = "Serve the DORADD deterministic runtime over TCP" in
  Cmd.v
    (Cmd.info "doradd-server" ~version:"1.0.0" ~doc)
    Term.(
      ret
        (const run $ host_arg $ port_arg $ backend_arg $ shards_arg $ workers_arg
       $ durable_arg $ no_fsync_arg $ keys_arg $ warehouses_arg))

let () = exit (Cmd.eval cmd)

(* doradd-chk: exhaustive interleaving checker for the lock-free kernel.

   Runs the lib/chk DPOR explorer over the registered bounded scenarios
   (the REAL Spsc/Mpmc/Node/Sequencer.Publication code, functored over a
   traced atomic) and reports, per scenario, either exhaustive PASS with
   exploration statistics or a minimal replayable counterexample
   schedule.  Exit code 0 iff every selected scenario passes.

   --bound scales per-process operation counts: the PR gate runs a small
   bound (seconds), the nightly sweep a deeper one.  --self-test runs
   the planted-bug twins (capacity-1 Vyukov overwrite, skipped
   generation bump) and verifies the checker FINDS both and that the
   shrunk counterexample replays — the canary that the exploration is
   alive, same idiom as lint.exe --self-test.  --schedule replays one
   comma-separated schedule against one scenario (counterexample
   debugging). *)

module Chk = Doradd_chk
module Engine = Chk.Engine
module Scenarios = Chk.Scenarios

type row = {
  scenario : Scenarios.t;
  bound : int;
  result : Engine.result;
  shrunk : int list option;
}

let run_scenario ~bound ~mode ~preemptions ~max_steps ~max_executions (s : Scenarios.t) =
  let prog = s.Scenarios.make ~bound in
  let result =
    Engine.explore ~mode ?preemption_bound:preemptions ~max_steps ~max_executions prog
  in
  let shrunk =
    match result with
    | Engine.Violation { name; schedule; _ } -> Some (Engine.shrink prog ~name schedule)
    | _ -> None
  in
  { scenario = s; bound; result; shrunk }

let passed row = match row.result with Engine.Ok _ -> true | _ -> false

let pp_stats (st : Engine.stats) =
  Printf.sprintf "executions=%d pruned=%d bound-pruned=%d steps=%d depth=%d" st.executions
    st.pruned st.bound_pruned st.steps st.max_depth

let pp_row row =
  match row.result with
  | Engine.Ok st -> Printf.printf "%-18s PASS       %s\n" row.scenario.Scenarios.name (pp_stats st)
  | Engine.Violation { name; schedule; stats } ->
    Printf.printf "%-18s VIOLATION  %s (%s)\n" row.scenario.Scenarios.name name (pp_stats stats);
    Printf.printf "  schedule: %s\n" (Engine.schedule_to_string schedule);
    (match row.shrunk with
    | Some s ->
      Printf.printf "  shrunk:   %s  (replay: chk.exe %s --bound %d --schedule %s)\n"
        (Engine.schedule_to_string s) row.scenario.Scenarios.name row.bound
        (Engine.schedule_to_string s)
    | None -> ())
  | Engine.Limit { what; schedule; stats } ->
    Printf.printf "%-18s LIMIT      %s (%s)\n" row.scenario.Scenarios.name what (pp_stats stats);
    if schedule <> [] then Printf.printf "  schedule: %s\n" (Engine.schedule_to_string schedule)

(* hand-rolled JSON, same style as the other report emitters *)
let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_of_row row =
  let status, extra =
    match row.result with
    | Engine.Ok _ -> ("pass", "")
    | Engine.Violation { name; schedule; _ } ->
      ( "violation",
        Printf.sprintf ", \"violation\": \"%s\", \"schedule\": \"%s\"%s" (json_escape name)
          (Engine.schedule_to_string schedule)
          (match row.shrunk with
          | Some s -> Printf.sprintf ", \"shrunk\": \"%s\"" (Engine.schedule_to_string s)
          | None -> "") )
    | Engine.Limit { what; schedule; _ } ->
      Printf.sprintf ", \"limit\": \"%s\", \"schedule\": \"%s\"" (json_escape what)
        (Engine.schedule_to_string schedule)
      |> fun e -> ("limit", e)
  in
  let st =
    match row.result with
    | Engine.Ok st | Engine.Violation { stats = st; _ } | Engine.Limit { stats = st; _ } -> st
  in
  Printf.sprintf
    "{\"name\": \"%s\", \"bound\": %d, \"status\": \"%s\", \"executions\": %d, \"pruned\": %d, \
     \"bound_pruned\": %d, \"steps\": %d, \"max_depth\": %d%s}"
    (json_escape row.scenario.Scenarios.name)
    row.bound status st.Engine.executions st.Engine.pruned st.Engine.bound_pruned st.Engine.steps
    st.Engine.max_depth extra

let print_json ~bound ~mode rows =
  Printf.printf "{\"bound\": %d, \"mode\": \"%s\", \"scenarios\": [%s]}\n" bound
    (match mode with `Dpor -> "dpor" | `Brute -> "brute")
    (String.concat ", " (List.map json_of_row rows))

(* --self-test: the checker must FIND both planted bugs, and the shrunk
   counterexample must replay to the same violation. *)
let self_test ~bound ~max_steps ~max_executions =
  List.for_all
    (fun (s : Scenarios.t) ->
      let expect = match s.Scenarios.expect with Some e -> e | None -> assert false in
      let prog = s.Scenarios.make ~bound in
      match Engine.explore ~max_steps ~max_executions prog with
      | Engine.Violation { name; schedule; stats } when name = expect -> (
        let shrunk = Engine.shrink prog ~name schedule in
        match Engine.run_schedule prog shrunk with
        | Engine.Replay_violation { name = name'; _ } when name' = name ->
          Printf.eprintf
            "self-test: %s caught %s after %d executions; %d-step repro (%d switches) replays => \
             PASS\n"
            s.Scenarios.name name stats.Engine.executions (List.length shrunk)
            (Engine.switches shrunk);
          true
        | _ ->
          Printf.eprintf "self-test: %s caught %s but shrunk schedule does not replay => FAIL\n"
            s.Scenarios.name name;
          false)
      | Engine.Violation { name; _ } ->
        Printf.eprintf "self-test: %s found %s, expected %s => FAIL\n" s.Scenarios.name name expect;
        false
      | Engine.Ok st ->
        Printf.eprintf "self-test: %s MISSED %s (%d executions explored, no violation) => FAIL\n"
          s.Scenarios.name expect st.Engine.executions;
        false
      | Engine.Limit { what; _ } ->
        Printf.eprintf "self-test: %s hit limit (%s) before finding %s => FAIL\n" s.Scenarios.name
          what expect;
        false)
    (Scenarios.planted ())

let replay name ~bound ~max_steps schedule_str =
  match Scenarios.find name with
  | None -> `Error (false, Printf.sprintf "unknown scenario %s" name)
  | Some s -> (
    let prog = s.Scenarios.make ~bound in
    let sched =
      try Engine.schedule_of_string schedule_str
      with _ -> invalid_arg "bad --schedule (expected comma-separated process indices)"
    in
    match Engine.run_schedule ~max_steps prog sched with
    | Engine.Replay_ok ->
      Printf.printf "%s: schedule %s completes cleanly\n" name
        (Engine.schedule_to_string sched);
      `Ok ()
    | Engine.Replay_violation { name = v; prefix } ->
      Printf.printf "%s: violation %s at step %d (schedule %s)\n" name v (List.length prefix)
        (Engine.schedule_to_string prefix);
      `Ok ()
    | Engine.Replay_invalid why -> `Error (false, Printf.sprintf "invalid schedule: %s" why))

open Cmdliner

let bound_arg =
  Arg.(
    value & opt int 2
    & info [ "b"; "bound" ] ~docv:"N"
        ~doc:"Scenario size: per-process operation count scale. The PR gate uses 2; nightly 3+.")

let mode_arg =
  Arg.(
    value
    & opt (enum [ ("dpor", `Dpor); ("brute", `Brute) ]) `Dpor
    & info [ "mode" ] ~docv:"MODE" ~doc:"Exploration mode: dpor (default) or brute (no reduction).")

let preemptions_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "preemptions" ] ~docv:"K"
        ~doc:"Bound involuntary context switches per schedule (default: unbounded).")

let max_steps_arg =
  Arg.(
    value & opt int 50_000
    & info [ "max-steps" ] ~docv:"N" ~doc:"Per-execution step budget (livelock detector).")

let max_executions_arg =
  Arg.(
    value & opt int 2_000_000
    & info [ "max-executions" ] ~docv:"N" ~doc:"Total execution budget across one scenario.")

let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Emit a machine-readable JSON report.")

let self_test_arg =
  Arg.(
    value & flag
    & info [ "self-test" ]
        ~doc:
          "Also run the planted-bug twins and fail unless the checker finds both and the shrunk \
           counterexamples replay.")

let list_arg = Arg.(value & flag & info [ "list" ] ~doc:"List scenarios and exit.")

let schedule_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "schedule" ] ~docv:"P,P,..."
        ~doc:"Replay one schedule against the single named scenario and exit.")

let scenarios_arg =
  let doc = "Scenarios to check (default: every non-planted scenario). See --list." in
  Arg.(value & pos_all string [] & info [] ~docv:"SCENARIO" ~doc)

let main bound mode preemptions max_steps max_executions json self_test_requested list_requested
    schedule names =
  if bound <= 0 then `Error (false, "--bound must be positive")
  else if list_requested then begin
    List.iter
      (fun (s : Scenarios.t) ->
        Printf.printf "%-18s %s%s\n" s.Scenarios.name s.Scenarios.descr
          (if s.Scenarios.planted then "  [planted: self-test only]" else ""))
      Scenarios.all;
    `Ok ()
  end
  else
    match (schedule, names) with
    | Some sched, [ name ] -> replay name ~bound ~max_steps sched
    | Some _, _ -> `Error (false, "--schedule needs exactly one scenario name")
    | None, _ -> (
      let selected =
        if names = [] then Scenarios.registry ()
        else
          List.filter_map
            (fun name ->
              match Scenarios.find name with
              | Some s -> Some s
              | None ->
                Printf.eprintf "doradd-chk: unknown scenario %s\n" name;
                None)
            names
      in
      if selected = [] then `Error (false, "no known scenario selected")
      else
        let rows =
          List.map (run_scenario ~bound ~mode ~preemptions ~max_steps ~max_executions) selected
        in
        if json then print_json ~bound ~mode rows else List.iter pp_row rows;
        let self_ok =
          if self_test_requested then self_test ~bound ~max_steps ~max_executions else true
        in
        match (List.for_all passed rows, self_ok) with
        | true, true -> `Ok ()
        | false, _ -> `Error (false, "model checker found violations (or hit limits)")
        | _, false -> `Error (false, "self-test failed: planted bugs not caught"))

let cmd =
  let doc = "Exhaustive interleaving checker (DPOR) for DORADD's lock-free kernel" in
  Cmd.v
    (Cmd.info "doradd-chk" ~version:"1.0.0" ~doc)
    Term.(
      ret
        (const main $ bound_arg $ mode_arg $ preemptions_arg $ max_steps_arg $ max_executions_arg
       $ json_arg $ self_test_arg $ list_arg $ schedule_arg $ scenarios_arg))

let () = exit (Cmd.eval cmd)

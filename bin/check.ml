(* doradd-check: determinism torture tool.

   Replays randomly generated logs of several application types through
   the real runtime with varying worker counts (and, for the KV store,
   through the pipelined dispatcher) and verifies every run is
   bit-identical to serial execution.  A second pass replays each
   application once per worker count under the footprint sanitizer and
   happens-before checker (doradd_analysis) — digests can only catch a
   footprint lie that happened to corrupt state; the sanitizer catches
   the lie itself.  A third pass is a DST smoke tier (doradd_dst): the
   oracle self-test plus a handful of fuzzed seeds, so every CI run of
   check also exercises schedule fuzzing and fault injection (the full
   seed sweep lives in bin/dst.exe).  A fourth pass is an observability
   smoke (doradd_obs): one traced run whose span log and exporters
   (Chrome trace_event JSON, metrics JSON) must stay structurally valid.
   A fifth pass is the model-checker tier (doradd_chk): DPOR-exhaustive
   exploration of the lock-free kernel's bounded scenarios plus the
   planted-bug canaries (the deep sweep lives in bin/chk.exe).
   Exit code 0 iff everything matches, every sanitized replay is clean,
   every DST seed passes, the exporters validate, and every checker
   scenario is interleaving-clean — usable as a CI gate for runtime
   changes. *)

module Core = Doradd_core
module Db = Doradd_db
module Rng = Doradd_stats.Rng
module Table = Doradd_stats.Table
module A = Doradd_analysis

type outcome = { name : string; runs : int; mismatches : int }

let worker_counts = [ 1; 2; 3; 4 ]

(* -- application harnesses: generate a log from a seed, return a state
      digest for (serial | parallel workers) execution ----------------- *)

let check_counters ~seed ~n =
  let n_keys = 32 in
  let rng = Rng.create seed in
  let log =
    Array.init n (fun id ->
        (id, Array.init (1 + Rng.int rng 4) (fun _ -> Rng.int rng n_keys)))
  in
  let serial () =
    let cells = Array.make n_keys 0 in
    Array.iter (fun (id, ks) -> Array.iter (fun k -> cells.(k) <- (cells.(k) * 31) + id) ks) log;
    Array.to_list cells |> List.fold_left (fun a v -> (a * 1_000_003) + v) 0
  in
  let parallel workers =
    let cells = Array.init n_keys (fun _ -> Core.Resource.create 0) in
    Core.Runtime.run_log ~workers
      (fun (_, ks) ->
        Core.Footprint.of_slots (Array.to_list (Array.map (fun k -> Core.Resource.slot cells.(k)) ks)))
      (fun (id, ks) ->
        Array.iter (fun k -> Core.Resource.update cells.(k) (fun v -> (v * 31) + id)) ks)
      log;
    Array.fold_left (fun a c -> (a * 1_000_003) + Core.Resource.get c) 0 cells
  in
  (serial (), List.map parallel worker_counts)

let check_kv ~seed ~n =
  let n_keys = 128 in
  let rng = Rng.create seed in
  let txns =
    Array.init n (fun id ->
        let ops =
          Array.init 5 (fun _ ->
              {
                Db.Kv.key = Rng.int rng n_keys;
                kind = (if Rng.bool rng then Db.Kv.Read else Db.Kv.Update);
              })
        in
        { Db.Kv.id; ops })
  in
  let keys = Array.init n_keys Fun.id in
  let serial () =
    let s = Db.Store.create () in
    Db.Store.populate s ~n:n_keys;
    ignore (Db.Kv.run_sequential s txns);
    Db.Kv.state_digest s ~keys
  in
  let parallel workers =
    let s = Db.Store.create () in
    Db.Store.populate s ~n:n_keys;
    ignore (Db.Kv.run_parallel ~workers s txns);
    Db.Kv.state_digest s ~keys
  in
  let pipelined stages =
    let s = Db.Store.create () in
    Db.Store.populate s ~n:n_keys;
    ignore (Db.Kv_pipeline.run_pipelined ~workers:2 ~stages s txns);
    Db.Kv.state_digest s ~keys
  in
  ( serial (),
    List.map parallel worker_counts
    @ List.map pipelined Core.Pipeline.[ One_core; Two_core; Four_core ] )

let check_tpcc ~seed ~n =
  let cfg = { Db.Tpcc_db.warehouses = 2; customers_per_district = 40; items = 400 } in
  let txns = Db.Tpcc_db.generate (Db.Tpcc_db.create cfg) (Rng.create seed) ~n in
  let serial () =
    let db = Db.Tpcc_db.create cfg in
    Db.Tpcc_db.run_sequential db txns;
    Db.Tpcc_db.digest db
  in
  let parallel workers =
    let db = Db.Tpcc_db.create cfg in
    Db.Tpcc_db.run_parallel ~workers db txns;
    Db.Tpcc_db.digest db
  in
  (serial (), List.map parallel worker_counts)

let check_ledger ~seed ~n =
  let cfg = { Db.Ledger.accounts = 64; pools = 2 } in
  let txns = Db.Ledger.generate (Db.Ledger.create cfg) (Rng.create seed) ~n in
  let serial () =
    let l = Db.Ledger.create cfg in
    Db.Ledger.run_sequential l txns;
    Db.Ledger.digest l
  in
  let parallel workers =
    let l = Db.Ledger.create cfg in
    Db.Ledger.run_parallel ~workers l txns;
    Db.Ledger.digest l
  in
  (serial (), List.map parallel worker_counts)

let check_chain ~seed ~n =
  (* worst case for the scheduler: one hot cell makes the whole log a
     single dependency chain, and capacity-2 queues keep every worker
     re-push on the overflow/backpressure path (the node pool recycles at
     full tilt).  The non-commutative op makes any ordering slip visible
     in the digest. *)
  let salt = Rng.int (Rng.create seed) 0x3fff_ffff in
  let log = Array.init n (fun i -> salt + i) in
  let serial () = Array.fold_left (fun v id -> (v * 31) + id + 1) 0 log in
  let parallel workers =
    let cell = Core.Resource.create 0 in
    Core.Runtime.run_log ~workers ~queue_capacity:2
      (fun _ -> Core.Footprint.of_slots [ Core.Resource.slot cell ])
      (fun id -> Core.Resource.update cell (fun v -> (v * 31) + id + 1))
      log;
    Core.Resource.peek cell
  in
  (serial (), List.map parallel worker_counts)

let apps =
  [
    ("counters", check_counters);
    ("kv", check_kv);
    ("tpcc", check_tpcc);
    ("ledger", check_ledger);
    ("chain", check_chain);
  ]

let run_app ~iterations ~seed ~n (name, check) =
  let mismatches = ref 0 in
  let runs = ref 0 in
  for i = 0 to iterations - 1 do
    let expected, got = check ~seed:(seed + i) ~n in
    List.iter
      (fun digest ->
        incr runs;
        if digest <> expected then incr mismatches)
      got
  done;
  { name; runs = !runs; mismatches = !mismatches }

(* -- sanitizer gate: replay each workload under the footprint sanitizer
      and happens-before checker, one run per worker count -------------- *)

let run_sanitize ~seed ~n (spec : A.Workloads.spec) =
  List.map
    (fun workers ->
      { A.Report.workload = spec.A.Workloads.name; workers;
        outcome = spec.A.Workloads.replay ~seed ~n ~workers })
    worker_counts

let sanitize_table ~seed ~n =
  let report = List.concat_map (run_sanitize ~seed ~n) A.Workloads.all in
  Table.print ~title:"doradd-check: footprint sanitizer + happens-before checker"
    ~header:[ "workload"; "workers"; "violations"; "races"; "pairs checked"; "verdict" ]
    (List.map
       (fun e ->
         let o = e.A.Report.outcome in
         [
           e.A.Report.workload;
           string_of_int e.A.Report.workers;
           string_of_int (List.length o.A.Sanitize.violations);
           string_of_int (List.length o.A.Sanitize.hb.A.Hb.races);
           string_of_int o.A.Sanitize.hb.A.Hb.checked_pairs;
           (if A.Report.clean_entry e then "PASS" else "FAIL");
         ])
       report);
  A.Report.clean report

(* -- DST smoke tier: oracle self-test + a few fuzzed seeds ------------ *)

let dst_smoke ~seed ~seeds =
  let self_ok =
    match Doradd_dst.Runner.self_test () with
    | Ok () -> true
    | Error missed ->
      List.iter (Printf.eprintf "doradd-check: dst self-test: %s\n") missed;
      false
  in
  let report =
    Doradd_dst.Runner.run ~shrink:true ~sanitize_every:0 ~seeds ~first_seed:seed ()
  in
  List.iter
    (fun (r : Doradd_dst.Runner.seed_report) ->
      Printf.eprintf "doradd-check: dst seed %d FAILED (case %s)\n" r.seed r.case;
      List.iter
        (fun f -> Printf.eprintf "  oracle: %s\n" (Doradd_dst.Oracle.to_string f))
        r.failures;
      match r.repro with
      | Some repro -> Printf.eprintf "  repro: %s\n" repro.Doradd_dst.Shrink.command
      | None -> ())
    report.failed;
  Table.print ~title:"doradd-check: DST smoke (schedule fuzzing + fault injection)"
    ~header:[ "tier"; "runs"; "failures"; "verdict" ]
    [
      [ "self-test canaries"; "6"; (if self_ok then "0" else "some"); (if self_ok then "PASS" else "FAIL") ];
      [
        "fuzzed seeds";
        string_of_int seeds;
        string_of_int (List.length report.failed);
        (if Doradd_dst.Runner.ok report then "PASS" else "FAIL");
      ];
    ];
  self_ok && Doradd_dst.Runner.ok report

(* -- observability smoke: a traced run's exporters must stay valid ---- *)

module Obs = Doradd_obs

let obs_smoke ~seed ~n =
  let n = min n 500 in
  Obs.Counters.reset ();
  Obs.Trace.arm ();
  ignore (check_counters ~seed ~n);
  Obs.Trace.disarm ();
  let events = Obs.Trace.events () in
  Obs.Trace.clear ();
  let spans = Obs.Timeline.spans events in
  let committed =
    List.length (List.filter (fun (s : Obs.Timeline.span) -> s.commit <> None) spans)
  in
  (* check_counters runs the traced log once per worker count, all on
     fresh runtimes inside one bracket, so seqnos repeat: spans collapse
     by seqno and every one of the n must have committed *)
  let chrome_ok =
    match Obs.Json.parse (Obs.Export.chrome_trace_string ~events ()) with
    | Error _ -> false
    | Ok doc -> (
      match Option.bind (Obs.Json.member "traceEvents" doc) Obs.Json.to_list with
      | Some (_ :: _) -> true
      | _ -> false)
  in
  let metrics_ok =
    match Obs.Json.parse (Obs.Export.metrics_json_string ~events ()) with
    | Error _ -> false
    | Ok doc -> Obs.Json.member "counters" doc <> None
  in
  let spans_ok = committed = n in
  Table.print ~title:"doradd-check: observability smoke (traced run + exporters)"
    ~header:[ "check"; "detail"; "verdict" ]
    [
      [ "spans committed"; Printf.sprintf "%d/%d" committed n;
        (if spans_ok then "PASS" else "FAIL") ];
      [ "chrome trace JSON"; Printf.sprintf "%d events" (List.length events);
        (if chrome_ok then "PASS" else "FAIL") ];
      [ "metrics JSON"; "parse + counters key";
        (if metrics_ok then "PASS" else "FAIL") ];
    ];
  spans_ok && chrome_ok && metrics_ok

(* -- model-checker tier: DPOR over the lock-free kernel --------------- *)

module Chk = Doradd_chk

let chk_smoke ~bound =
  let explore_row ~bound ok_of (s : Chk.Scenarios.t) =
    let r = Chk.Engine.explore (s.Chk.Scenarios.make ~bound) in
    let ok, detail = ok_of r in
    let execs =
      match r with
      | Chk.Engine.Ok st -> string_of_int st.Chk.Engine.executions
      | _ -> "-"
    in
    (ok, [ s.Chk.Scenarios.name; execs; detail; (if ok then "PASS" else "FAIL") ])
  in
  let healthy =
    List.map
      (explore_row ~bound (function
        | Chk.Engine.Ok _ -> (true, "exhaustive, no violation")
        | Chk.Engine.Violation { name; schedule; _ } ->
          (false, Printf.sprintf "%s (schedule %s)" name (Chk.Engine.schedule_to_string schedule))
        | Chk.Engine.Limit { what; _ } -> (false, "limit: " ^ what)))
      (Chk.Scenarios.registry ())
  in
  (* the planted-bug twins are the tier's canaries: if the checker ever
     stops finding them, the gate itself is broken *)
  let planted =
    List.map
      (fun (s : Chk.Scenarios.t) ->
        let expect = Option.get s.Chk.Scenarios.expect in
        explore_row ~bound:2
          (function
            | Chk.Engine.Violation { name; _ } when name = expect -> (true, "caught " ^ name)
            | _ -> (false, "MISSED " ^ expect))
          s)
      (Chk.Scenarios.planted ())
  in
  let rows = healthy @ planted in
  Table.print
    ~title:(Printf.sprintf "doradd-check: model checker (DPOR exhaustive, bound %d)" bound)
    ~header:[ "scenario"; "executions"; "detail"; "verdict" ]
    (List.map snd rows);
  List.for_all fst rows

(* -- recovery smoke: kill/recover/verify with real fsync -------------- *)

module Persist = Doradd_persist

let recovery_smoke ~seed =
  let module Cp = Persist.Crashpoint in
  let points = [ Cp.Pre_fsync; Cp.Mid_append; Cp.Mid_rotation; Cp.Mid_snapshot ] in
  let n = 240 and n_keys = 96 and group_commit = 4 and snapshot_every = 40 in
  let keys = Array.init n_keys Fun.id in
  let txns =
    let rng = Rng.create (seed lxor 0x7263_6b76) in
    Array.init n (fun id ->
        let ops =
          Array.init 4 (fun _ ->
              {
                Db.Kv.key = Rng.int rng n_keys;
                kind = (if Rng.bool rng then Db.Kv.Read else Db.Kv.Update);
              })
        in
        { Db.Kv.id; ops })
  in
  let serial_prefix r =
    let s = Db.Store.create () in
    Db.Store.populate s ~n:n_keys;
    ignore (Db.Kv.run_sequential s (Array.sub txns 0 r));
    Db.Kv.state_digest s ~keys
  in
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  let one point =
    let dir = Filename.temp_dir "doradd_check_recovery" "" in
    Fun.protect ~finally:(fun () -> Cp.disarm (); rm_rf dir) @@ fun () ->
    let open_kv () =
      (* real fsync: this tier exercises the actual durability path *)
      Db.Durable_kv.open_ ~dir ~n_keys ~max_txns:n ~group_commit ~segment_bytes:2048
        ~fsync:true ()
    in
    let kv = open_kv () in
    let countdown = ref 3 in
    Cp.arm (fun p ->
        if p = point then begin
          decr countdown;
          !countdown <= 0
        end
        else false);
    let crashed =
      try
        Array.iteri
          (fun i txn ->
            ignore (Db.Durable_kv.submit kv txn);
            if i > 0 && i mod snapshot_every = 0 then ignore (Db.Durable_kv.snapshot kv))
          txns;
        false
      with Cp.Crashed _ -> true
    in
    Cp.disarm ();
    let acked = Db.Durable_kv.durable kv in
    Db.Durable_kv.crash_close kv;
    let kv2 = open_kv () in
    Db.Durable_kv.quiesce kv2;
    let r = Db.Durable_kv.recovered kv2 in
    let digest_ok = Db.Durable_kv.state_digest kv2 = serial_prefix r in
    Db.Durable_kv.close kv2;
    let pass = crashed && digest_ok && r >= acked && r <= n in
    ( pass,
      [
        Cp.to_string point;
        (if crashed then "yes" else "NO");
        string_of_int acked;
        string_of_int r;
        (if digest_ok then "matches serial" else "DIVERGES");
        (if pass then "PASS" else "FAIL");
      ] )
  in
  let rows = List.map one points in
  Table.print ~title:"doradd-check: crash recovery (kill/recover/verify, real fsync)"
    ~header:[ "crash point"; "crashed"; "acked"; "recovered"; "digest"; "verdict" ]
    (List.map snd rows);
  List.for_all fst rows

(* -- sharded tier: N dispatcher pipelines vs serial ------------------- *)

(* The sharded determinism contract, end to end on the real runtime:
   final digest, per-request results, AND per-resource commit order must
   be invariant in the shard count — for a KV mix with genuine
   cross-shard transactions and for TPCC-NP with remote order lines. *)
let sharded_tier ~seed ~n ~shards =
  let shard_counts = List.sort_uniq compare [ 1; 2; shards ] in
  let n = min n 2_000 in
  let kv_rows =
    let n_keys = 96 in
    let rng = Rng.create (seed lxor 0x0073_6872) in
    let txns =
      Array.init n (fun id ->
          let ops =
            Array.init
              (1 + Rng.int rng 4)
              (fun _ ->
                {
                  Db.Kv.key = Rng.int rng n_keys;
                  kind = (if Rng.int rng 4 = 0 then Db.Kv.Read else Db.Kv.Update);
                })
          in
          { Db.Kv.id; ops })
    in
    let sd, sr, so = Db.Sharded_kv.run_serial ~n_keys txns in
    List.map
      (fun k ->
        let d, r, o = Db.Sharded_kv.run_sharded ~workers_per_shard:2 ~shards:k ~n_keys txns in
        let ok = d = sd && r = sr && o = so in
        ( ok,
          [
            "kv"; string_of_int k;
            (if d = sd then "ok" else "DIVERGES");
            (if r = sr then "ok" else "DIVERGES");
            (if o = so then "ok" else "DIVERGES");
            (if ok then "PASS" else "FAIL");
          ] ))
      shard_counts
  in
  let tpcc_rows =
    let cfg = { Db.Tpcc_db.warehouses = 8; customers_per_district = 40; items = 400 } in
    let gen = Db.Tpcc_db.create cfg in
    let txns = Db.Tpcc_db.generate ~remote_pct:10 gen (Rng.create (seed lxor 0x0074_7063)) ~n in
    let reference = Db.Tpcc_db.create cfg in
    Db.Tpcc_db.run_sequential reference txns;
    let expected = Db.Tpcc_db.digest reference in
    List.map
      (fun k ->
        let db = Db.Tpcc_db.create cfg in
        Db.Tpcc_db.run_sharded ~workers_per_shard:2 ~shards:k db txns;
        let ok = Db.Tpcc_db.digest db = expected in
        ( ok,
          [
            "tpcc-np 10% remote"; string_of_int k;
            (if ok then "ok" else "DIVERGES"); "-"; "-";
            (if ok then "PASS" else "FAIL");
          ] ))
      shard_counts
  in
  let rows = kv_rows @ tpcc_rows in
  Table.print
    ~title:(Printf.sprintf "doradd-check: sharded runtime (up to %d shards) vs serial" shards)
    ~header:[ "application"; "shards"; "digest"; "results"; "commit order"; "verdict" ]
    (List.map snd rows);
  List.for_all fst rows

(* -- suspend tier: forced effects-based suspensions vs serial --------- *)

(* The suspendable-transaction contract under forced suspension: every KV
   transaction dispatched through [schedule_suspendable] with seed-derived
   yields (0-3 per txn), and TPCC-NP with 10% remote order lines whose
   cross-shard early arrivers park on the effects waitset.  Digest,
   per-request results, and per-resource commit order must still be
   byte-identical to serial at every shard count, and the suspend/resume
   counters must balance after each drain (every park resumed exactly
   once, nothing resumed twice). *)
let suspend_tier ~seed ~n =
  let n = min n 2_000 in
  let shard_counts = [ 1; 2; 4 ] in
  let balance f =
    let s0 = Core.Effects.suspend_count () and r0 = Core.Effects.resume_count () in
    let out = f () in
    let ds = Core.Effects.suspend_count () - s0 and dr = Core.Effects.resume_count () - r0 in
    (out, ds, dr)
  in
  let kv_rows =
    let n_keys = 96 in
    let rng = Rng.create (seed lxor 0x7375_7370) in
    let txns =
      Array.init n (fun id ->
          let ops =
            Array.init
              (1 + Rng.int rng 4)
              (fun _ ->
                {
                  Db.Kv.key = Rng.int rng n_keys;
                  kind = (if Rng.int rng 4 = 0 then Db.Kv.Read else Db.Kv.Update);
                })
          in
          { Db.Kv.id; ops })
    in
    let suspends_of id = (id * 31) lxor seed land 3 in
    let sd, sr, so = Db.Sharded_kv.run_serial ~n_keys txns in
    List.map
      (fun k ->
        let (d, r, o), ds, dr =
          balance (fun () ->
              Db.Sharded_kv.run_sharded ~workers_per_shard:2 ~shards:k ~n_keys ~suspends_of txns)
        in
        let ok = d = sd && r = sr && o = so && ds = dr && ds > 0 in
        ( ok,
          [
            "kv forced yields"; string_of_int k;
            (if d = sd && r = sr && o = so then "ok" else "DIVERGES");
            Printf.sprintf "%d/%d" ds dr;
            (if ok then "PASS" else "FAIL");
          ] ))
      shard_counts
  in
  let tpcc_rows =
    let cfg = { Db.Tpcc_db.warehouses = 8; customers_per_district = 40; items = 400 } in
    let gen = Db.Tpcc_db.create cfg in
    let txns = Db.Tpcc_db.generate ~remote_pct:10 gen (Rng.create (seed lxor 0x7370_7463)) ~n in
    let reference = Db.Tpcc_db.create cfg in
    Db.Tpcc_db.run_sequential reference txns;
    let expected = Db.Tpcc_db.digest reference in
    List.map
      (fun k ->
        let db = Db.Tpcc_db.create cfg in
        let (), ds, dr =
          balance (fun () -> Db.Tpcc_db.run_sharded ~workers_per_shard:2 ~shards:k db txns)
        in
        (* parks are schedule-dependent (only EARLY cross-shard arrivers
           suspend), so assert balance, not a count *)
        let ok = Db.Tpcc_db.digest db = expected && ds = dr in
        ( ok,
          [
            "tpcc-np 10% remote"; string_of_int k;
            (if Db.Tpcc_db.digest db = expected then "ok" else "DIVERGES");
            Printf.sprintf "%d/%d" ds dr;
            (if ok then "PASS" else "FAIL");
          ] ))
      shard_counts
  in
  let rows = kv_rows @ tpcc_rows in
  Table.print ~title:"doradd-check: suspendable transactions (forced suspends) vs serial"
    ~header:[ "application"; "shards"; "digest+results+order"; "susp/res"; "verdict" ]
    (List.map snd rows);
  List.for_all fst rows

(* -- net tier: loopback TCP smoke — wire determinism end to end ------- *)

module Net = Doradd_net

(* The win condition for the TCP front end: the digest a client observes
   over loopback (and every per-request result it was sent) is
   byte-identical to an in-process serial replay of the server's request
   log.  Open-loop clients over 127.0.0.1 against KV (bimodal webserver
   mix) and 10%-remote TPCC-NP; one KV row runs in durable mode and also
   checks the WAL scan against the retained request log. *)
let net_tier ~seed ~n =
  let n = min n 2_000 in
  let one ~name ~make_backend ~workload ~shards ~wal_dir =
    let server =
      Net.Server.start
        {
          Net.Server.default_config with
          shards;
          wal_dir;
          wal_fsync = false (* real-fsync durability is the recovery tier's job *);
        }
        (make_backend ())
    in
    let report =
      Net.Loadgen.run
        {
          Net.Loadgen.default_cfg with
          port = Net.Server.port server;
          connections = 4;
          requests = n;
          seed;
          workload;
          collect_replies = true;
        }
    in
    Net.Server.stop server;
    let log = Net.Server.request_log server in
    let sdigest, sresults = Net.Backend.replay_serial make_backend log in
    let digest_ok = Net.Server.digest server = sdigest in
    let replies_ok =
      Array.length report.Net.Loadgen.replies = n
      && Array.for_all
           (fun (stamp, status, result) ->
             stamp >= 0 && stamp < n
             &&
             match sresults.(stamp) with
             | Some r -> status = Net.Wire.status_ok && result = r
             | None -> status = Net.Wire.status_malformed && result = 0)
           report.Net.Loadgen.replies
    in
    let counts_ok = report.Net.Loadgen.received = n && Array.length log = n in
    let wal_ok =
      match wal_dir with
      | None -> true
      | Some _ ->
        let records = Net.Server.wal_records server in
        Array.length records = Array.length log
        && Array.for_all
             (fun (seqno, data) -> seqno >= 0 && seqno < n && data = log.(seqno))
             records
    in
    let ok = digest_ok && replies_ok && counts_ok && wal_ok in
    ( ok,
      [
        name;
        string_of_int shards;
        string_of_int report.Net.Loadgen.received;
        (if digest_ok then "ok" else "DIVERGES");
        (if replies_ok then "ok" else "DIVERGES");
        (match wal_dir with
        | None -> "-"
        | Some _ -> if wal_ok then "matches log" else "DIVERGES");
        (if ok then "PASS" else "FAIL");
      ] )
  in
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  let kv_keys = 4096 in
  let tpcc_cfg = { Db.Tpcc_db.warehouses = 8; customers_per_district = 40; items = 400 } in
  let kv_row =
    one ~name:"kv webserver mix" ~make_backend:(fun () -> Net.Backend.kv ~n_keys:kv_keys ())
      ~workload:
        (Net.Loadgen.Kv
           {
             n_keys = kv_keys;
             ops_per_txn = 4;
             update_pct = 50;
             heavy_pct = 10;
             light_work = 50;
             heavy_work = 2_000;
           })
      ~shards:2 ~wal_dir:None
  in
  let tpcc_row =
    one ~name:"tpcc-np 10% remote"
      ~make_backend:(fun () -> Net.Backend.tpcc ~config:tpcc_cfg ())
      ~workload:(Net.Loadgen.Tpcc { config = tpcc_cfg; remote_pct = 10 })
      ~shards:4 ~wal_dir:None
  in
  let durable_row =
    let dir = Filename.temp_dir "doradd_check_net" "" in
    Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
    one ~name:"kv durable"
      ~make_backend:(fun () -> Net.Backend.kv ~n_keys:kv_keys ())
      ~workload:
        (Net.Loadgen.Kv
           {
             n_keys = kv_keys;
             ops_per_txn = 4;
             update_pct = 50;
             heavy_pct = 0;
             light_work = 0;
             heavy_work = 0;
           })
      ~shards:2 ~wal_dir:(Some dir)
  in
  let rows = [ kv_row; tpcc_row; durable_row ] in
  Table.print ~title:"doradd-check: TCP front end (loopback) vs serial replay of the wire log"
    ~header:[ "workload"; "shards"; "replies"; "digest"; "results"; "wal"; "verdict" ]
    (List.map snd rows);
  List.for_all fst rows

module Repl = Doradd_repl

(* The win condition for the replication layer: kill the primary
   mid-stream (in-process SIGKILL stand-in: every socket cut first, WAL
   crash-closed) and the surviving cluster's state must equal a serial
   replay of the acked durable prefix — every write the client saw
   acknowledged sits in the new primary's log at its acked stamp with
   its acked result, nothing acked is lost, the survivors' logs agree,
   and a rejoining ex-primary converges to the same digest.  Replica
   reads are checked against the staleness bound: a read at
   [min_stamp = w] must reflect a log position >= w, and once writes
   stop, exactly the full-prefix state. *)
let repl_tier ~seed ~n =
  let n = min n 400 in
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  let dir = Filename.temp_dir "doradd_check_repl" "" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let kv_keys = 4096 in
  let make_backend () = Net.Backend.kv ~n_keys:kv_keys () in
  (* Pre-bind the replication listeners so the full peer topology is
     known before any node starts. *)
  let bind_listener port =
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen fd 64;
    let port =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | Unix.ADDR_UNIX _ -> assert false
    in
    (fd, port)
  in
  let listeners = Array.init 3 (fun _ -> bind_listener 0) in
  let rport i = snd listeners.(i) in
  let peers i =
    List.filter_map
      (fun j -> if j = i then None else Some (j, "127.0.0.1", rport j))
      [ 0; 1; 2 ]
  in
  let start_node ?repl_fd ?backup_of i initial_role =
    Repl.Node.start
      (Repl.Node.make_config ~node_id:i
         ~data_dir:(Filename.concat dir (Printf.sprintf "n%d" i))
         ?repl_fd ?backup_of ~peers:(peers i) ~fsync:false ~sync_replicas:1
         ~heartbeat_s:0.01 ~election_timeout_s:0.3 ~initial_role ())
      make_backend
  in
  let n0 = start_node ~repl_fd:(fst listeners.(0)) 0 `Primary in
  let hint = ("127.0.0.1", rport 0) in
  let n1 = start_node ~repl_fd:(fst listeners.(1)) ~backup_of:hint 1 `Backup in
  let n2 = start_node ~repl_fd:(fst listeners.(2)) ~backup_of:hint 2 `Backup in
  let wait_port node =
    let deadline = Unix.gettimeofday () +. 10.0 in
    while Repl.Node.client_port node = 0 && Unix.gettimeofday () < deadline do
      Unix.sleepf 0.005
    done;
    Repl.Node.client_port node
  in
  let ports = List.map wait_port [ n0; n1; n2 ] in
  let session =
    Net.Client.Session.create ~addrs:(List.map (fun p -> ("127.0.0.1", p)) ports) ()
  in
  let rng = Random.State.make [| seed; 0x5e91 |] in
  let kill_at = (n / 4) + (Random.State.int rng (max 1 (n / 2))) in
  let acked = ref [] and n_acked = ref 0 and n_failed = ref 0 in
  let killed = ref false in
  let t_kill = ref 0.0 and t_recovered = ref 0.0 in
  for i = 0 to n - 1 do
    let n_ops = 1 + Random.State.int rng 3 in
    let body =
      Net.Wire.encode_kv
        {
          Net.Wire.work = 0;
          ops =
            Array.init n_ops (fun _ ->
                {
                  Net.Wire.key = Random.State.int rng kv_keys;
                  update = Random.State.bool rng;
                });
        }
    in
    (match Net.Client.Session.call ~retry_budget_s:20.0 session ~req_id:i ~body with
    | Ok r when r.Net.Wire.status = Net.Wire.status_ok ->
      incr n_acked;
      if !killed && !t_recovered = 0.0 then t_recovered := Unix.gettimeofday ();
      acked := (r.Net.Wire.stamp, body, r.Net.Wire.result) :: !acked
    | Ok _ | Error _ -> incr n_failed);
    if (not !killed) && !n_acked >= kill_at then begin
      killed := true;
      t_kill := Unix.gettimeofday ();
      Repl.Node.kill n0
    end
  done;
  Net.Client.Session.close session;
  let recovery_ms =
    if !t_recovered > 0.0 then (!t_recovered -. !t_kill) *. 1000.0 else -1.0
  in
  let new_primary, replica =
    match (Repl.Node.role n1, Repl.Node.role n2) with
    | Repl.Node.Primary, _ -> (Some n1, n2)
    | _, Repl.Node.Primary -> (Some n2, n1)
    | _ -> (None, n1)
  in
  (* Staleness bound: with writes stopped, a read at min_stamp = the new
     primary's durable watermark must execute at a position covering the
     full log and return exactly the full-replay read result. *)
  let reads_attempted = 20 in
  let reads_ok = ref 0 in
  let expected_read =
    match new_primary with
    | None -> fun _ -> None
    | Some p ->
      let w = Repl.Node.durable p in
      let bodies = Array.map snd (Repl.Node.wal_records p) in
      let oracle = make_backend () in
      Array.iteri
        (fun stamp body ->
          match oracle.Net.Backend.prepare ~stamp body with
          | Ok prep -> ignore (prep.Net.Backend.run ())
          | Error _ -> ())
        bodies;
      fun body ->
        match oracle.Net.Backend.prepare ~stamp:(Array.length bodies) body with
        | Ok prep -> Some (w, prep.Net.Backend.run ())
        | Error _ -> None
  in
  (match new_primary with
  | None -> ()
  | Some _ -> (
    match Net.Client.connect ~port:(Repl.Node.client_port replica) () with
    | exception Unix.Unix_error (_, _, _) -> ()
    | c ->
      Fun.protect
        ~finally:(fun () -> Net.Client.close c)
        (fun () ->
          for i = 0 to reads_attempted - 1 do
            let inner =
              Net.Wire.encode_kv
                {
                  Net.Wire.work = 0;
                  ops =
                    [| { Net.Wire.key = Random.State.int rng kv_keys; update = false } |];
                }
            in
            match expected_read inner with
            | None -> ()
            | Some (w, expect) -> (
              Net.Client.send c ~req_id:i
                ~body:(Net.Wire.encode_read ~min_stamp:w ~body:inner);
              match Net.Client.recv ~timeout_s:5.0 c with
              | Ok r
                when r.Net.Wire.status = Net.Wire.status_ok
                     && r.Net.Wire.stamp >= w
                     && r.Net.Wire.result = expect ->
                incr reads_ok
              | Ok _ | Error _ -> ())
          done)))
  ;
  (* Rejoin the crashed ex-primary over its surviving data dir: it must
     adopt the new epoch, catch up, and apply each entry exactly once. *)
  let l0 = bind_listener (rport 0) in
  let n0b =
    match new_primary with
    | Some p ->
      Some
        (start_node ~repl_fd:(fst l0)
           ~backup_of:("127.0.0.1", rport (Repl.Node.node_id p))
           0 `Backup)
    | None ->
      Unix.close (fst l0);
      None
  in
  let rejoin_ok =
    match (n0b, new_primary) with
    | Some node, Some p ->
      let target = Repl.Node.durable p in
      let deadline = Unix.gettimeofday () +. 10.0 in
      let rec wait () =
        if Repl.Node.applied node >= target then true
        else if Unix.gettimeofday () > deadline then false
        else begin
          Unix.sleepf 0.01;
          wait ()
        end
      in
      wait ()
    | _ -> false
  in
  (match n0b with Some node -> Repl.Node.stop node | None -> ());
  Repl.Node.stop n1;
  Repl.Node.stop n2;
  (* Offline verification from the durable logs. *)
  let log_of node = Repl.Node.wal_records node in
  let logs = [ log_of n1; log_of n2 ] @ (match n0b with Some x -> [ log_of x ] | None -> []) in
  let prefix_ok =
    match logs with
    | a :: rest ->
      List.for_all
        (fun b ->
          let common = min (Array.length a) (Array.length b) in
          let ok = ref true in
          for s = 0 to common - 1 do
            if a.(s) <> b.(s) then ok := false
          done;
          !ok)
        rest
    | [] -> true
  in
  let primary_log =
    match new_primary with Some p -> log_of p | None -> [||]
  in
  let sdigest, sresults =
    Net.Backend.replay_serial make_backend (Array.map snd primary_log)
  in
  let lost = ref 0 in
  List.iter
    (fun (stamp, body, result) ->
      let present =
        stamp >= 0
        && stamp < Array.length primary_log
        && snd primary_log.(stamp) = body
        && sresults.(stamp) = Some result
      in
      if not present then incr lost)
    !acked;
  let digests =
    List.map Repl.Node.digest
      ([ n1; n2 ] @ match n0b with Some x -> [ x ] | None -> [])
  in
  let digest_ok = List.for_all (fun d -> d = sdigest) digests in
  let elected_ok = new_primary <> None && recovery_ms >= 0.0 in
  let reads_row_ok = !reads_ok = reads_attempted in
  let chaos_ok = elected_ok && !lost = 0 && !n_acked = n in
  let converge_ok = rejoin_ok && prefix_ok && digest_ok in
  let rows =
    [
      ( chaos_ok,
        [
          "kill-the-primary";
          Printf.sprintf "%d/%d acked" !n_acked n;
          Printf.sprintf "%d lost" !lost;
          (match new_primary with
          | Some p -> Printf.sprintf "n%d in %.0f ms" (Repl.Node.node_id p) recovery_ms
          | None -> "NO PRIMARY");
          (if chaos_ok then "PASS" else "FAIL");
        ] );
      ( reads_row_ok,
        [
          "stale-bounded reads";
          Printf.sprintf "%d/%d" !reads_ok reads_attempted;
          "-";
          "-";
          (if reads_row_ok then "PASS" else "FAIL");
        ] );
      ( converge_ok,
        [
          "rejoin + replay";
          (if rejoin_ok then "caught up" else "LAGGING");
          (if prefix_ok then "prefixes agree" else "DIVERGES");
          (if digest_ok then "digests = serial" else "DIVERGES");
          (if converge_ok then "PASS" else "FAIL");
        ] );
    ]
  in
  Table.print
    ~title:
      "doradd-check: replication (3 nodes, sync=1) vs serial replay of the acked prefix"
    ~header:[ "phase"; "acked/reads"; "loss/prefix"; "primary/digest"; "verdict" ]
    (List.map snd rows);
  List.for_all fst rows

open Cmdliner

let iterations_arg =
  Arg.(value & opt int 3 & info [ "i"; "iterations" ] ~docv:"N" ~doc:"Random logs per application.")

let seed_arg = Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Base seed.")

let size_arg =
  Arg.(value & opt int 3_000 & info [ "n"; "size" ] ~docv:"REQS" ~doc:"Requests per log.")

let apps_arg =
  let doc = "Applications to torture: counters, kv, tpcc, ledger, chain, or all." in
  Arg.(value & pos_all string [ "all" ] & info [] ~docv:"APP" ~doc)

let no_sanitize_arg =
  Arg.(
    value & flag
    & info [ "no-sanitize" ]
        ~doc:"Skip the footprint-sanitizer / happens-before pass (digest comparison only).")

let dst_seeds_arg =
  Arg.(
    value & opt int 10
    & info [ "dst-seeds" ] ~docv:"N"
        ~doc:"Fuzzed DST seeds in the smoke tier (0 skips the tier entirely).")

let no_obs_arg =
  Arg.(
    value & flag
    & info [ "no-obs" ]
        ~doc:"Skip the observability smoke tier (traced run + exporter validation).")

let chk_bound_arg =
  Arg.(
    value & opt int 1
    & info [ "chk-bound" ] ~docv:"N"
        ~doc:"Per-process op bound for the model-checker tier (0 skips the tier; the deep \
              sweep lives in chk.exe).")

let shards_arg =
  Arg.(
    value & opt int 0
    & info [ "shards" ] ~docv:"N"
        ~doc:"Run the sharded-runtime tier with up to N dispatcher pipelines (0 skips \
              the tier): digest, result, and commit-order invariance of the sharded \
              runtime vs serial for KV and cross-shard TPCC-NP.")

let recovery_arg =
  Arg.(
    value & flag
    & info [ "recovery" ]
        ~doc:"Run the crash-recovery smoke tier: kill/recover/verify cycles with real \
              fsync across the WAL/snapshot crash points.")

let suspend_arg =
  Arg.(
    value & flag
    & info [ "suspend" ]
        ~doc:"Run the suspendable-transaction tier: KV with seed-derived forced yields \
              per transaction and 10%-remote TPCC-NP (cross-shard parks), dispatched \
              through the effects handler, must stay byte-identical to serial with \
              balanced suspend/resume counters.")

let net_arg =
  Arg.(
    value & flag
    & info [ "net" ]
        ~doc:"Run the TCP front-end smoke tier: open-loop clients over loopback against \
              the KV and 10%-remote TPCC-NP backends (one KV run durable); the digest \
              and every reply a client observed must match an in-process serial replay \
              of the server's request log, and the durable run's WAL scan must equal \
              that log.")

let repl_arg =
  Arg.(
    value & flag
    & info [ "repl" ]
        ~doc:"Run the replication failover tier: a 3-node in-process cluster \
              (sync-replicas 1) whose primary is killed mid-stream.  The surviving \
              nodes' state must equal a serial replay of the acked durable prefix \
              (no acked write lost), replica reads must honour their staleness \
              bound, and the rejoined ex-primary must converge to the same digest.")

let main iterations seed n no_sanitize dst_seeds no_obs chk_bound recovery shards suspend net repl names =
  let selected =
    if List.mem "all" names then apps
    else
      List.filter_map
        (fun name -> Option.map (fun c -> (name, c)) (List.assoc_opt name apps))
        names
  in
  if selected = [] then `Error (false, "no known application selected")
  else begin
    let results = List.map (run_app ~iterations ~seed ~n) selected in
    Table.print ~title:"doradd-check: parallel replay vs serial execution"
      ~header:[ "application"; "runs"; "mismatches"; "verdict" ]
      (List.map
         (fun r ->
           [
             r.name;
             string_of_int r.runs;
             string_of_int r.mismatches;
             (if r.mismatches = 0 then "PASS" else "FAIL");
           ])
         results);
    let digests_ok = List.for_all (fun r -> r.mismatches = 0) results in
    let sanitize_ok = no_sanitize || sanitize_table ~seed ~n in
    let dst_ok = dst_seeds <= 0 || dst_smoke ~seed ~seeds:dst_seeds in
    let obs_ok = no_obs || obs_smoke ~seed ~n in
    let chk_ok = chk_bound <= 0 || chk_smoke ~bound:chk_bound in
    let recovery_ok = (not recovery) || recovery_smoke ~seed in
    let sharded_ok = shards <= 0 || sharded_tier ~seed ~n ~shards in
    let suspend_ok = (not suspend) || suspend_tier ~seed ~n in
    let net_ok = (not net) || net_tier ~seed ~n in
    let repl_ok = (not repl) || repl_tier ~seed ~n in
    let failures =
      List.filter_map
        (fun (ok, msg) -> if ok then None else Some msg)
        [
          (digests_ok, "determinism violations detected");
          (sanitize_ok, "sanitizer violations detected");
          (dst_ok, "DST smoke tier failed");
          (obs_ok, "observability smoke tier failed");
          (chk_ok, "model-checker tier failed");
          (recovery_ok, "crash-recovery smoke tier failed");
          (sharded_ok, "sharded determinism tier failed");
          (suspend_ok, "suspendable-transaction tier failed");
          (net_ok, "TCP front-end smoke tier failed");
          (repl_ok, "replication failover tier failed");
        ]
    in
    match failures with [] -> `Ok () | msg :: _ -> `Error (false, msg)
  end

let cmd =
  let doc = "Torture-test DORADD's determinism guarantee on this machine" in
  Cmd.v
    (Cmd.info "doradd-check" ~version:"1.0.0" ~doc)
    Term.(
      ret
        (const main $ iterations_arg $ seed_arg $ size_arg $ no_sanitize_arg $ dst_seeds_arg
       $ no_obs_arg $ chk_bound_arg $ recovery_arg $ shards_arg $ suspend_arg $ net_arg
       $ repl_arg $ apps_arg))

let () = exit (Cmd.eval cmd)

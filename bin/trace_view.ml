(* doradd-trace-view: run a small traced workload on the real runtime and
   export the observability artifacts — a Chrome trace_event JSON for
   chrome://tracing / Perfetto, the span-derived latency-breakdown table,
   or the metrics JSON dump.  Doubles as the CI trace-export smoke: the
   chrome output must parse as JSON (jq) on every run. *)

module Core = Doradd_core
module Db = Doradd_db
module Rng = Doradd_stats.Rng
module Obs = Doradd_obs

let run_counters ~n ~workers ~seed =
  let n_keys = 64 in
  let rng = Rng.create seed in
  let log =
    Array.init n (fun id ->
        (id, Array.init (1 + Rng.int rng 4) (fun _ -> Rng.int rng n_keys)))
  in
  let cells = Array.init n_keys (fun _ -> Core.Resource.create 0) in
  Core.Runtime.run_log ~workers
    (fun (_, ks) ->
      Core.Footprint.of_slots
        (Array.to_list (Array.map (fun k -> Core.Resource.slot cells.(k)) ks)))
    (fun (id, ks) ->
      Array.iter (fun k -> Core.Resource.update cells.(k) (fun v -> (v * 31) + id)) ks)
    log

let kv_txns ~n ~n_keys ~seed =
  let rng = Rng.create seed in
  Array.init n (fun id ->
      let ops =
        Array.init 5 (fun _ ->
            {
              Db.Kv.key = Rng.int rng n_keys;
              kind = (if Rng.bool rng then Db.Kv.Read else Db.Kv.Update);
            })
      in
      { Db.Kv.id; ops })

let run_kv ~n ~workers ~seed =
  let n_keys = 128 in
  let s = Db.Store.create () in
  Db.Store.populate s ~n:n_keys;
  ignore (Db.Kv.run_parallel ~workers s (kv_txns ~n ~n_keys ~seed))

(* The full Figure 5 datapath: RPC handler, Indexer, Prefetcher and
   Spawner on their own domains — the only case whose spans cross all
   seven stages. *)
let run_kv_pipeline ~n ~workers ~seed =
  let n_keys = 128 in
  let s = Db.Store.create () in
  Db.Store.populate s ~n:n_keys;
  ignore
    (Db.Kv_pipeline.run_pipelined ~workers ~stages:Core.Pipeline.Four_core s
       (kv_txns ~n ~n_keys ~seed))

let cases =
  [
    ("counters", run_counters);
    ("kv", run_kv);
    ("kv-pipeline", run_kv_pipeline);
  ]

let main case n workers seed format output =
  match List.assoc_opt case cases with
  | None -> `Error (false, Printf.sprintf "unknown case %S" case)
  | Some run ->
    Obs.Counters.reset ();
    Obs.Trace.arm ();
    run ~n ~workers ~seed;
    Obs.Trace.disarm ();
    let body =
      match format with
      | "chrome" -> Obs.Export.chrome_trace_string ()
      | "metrics" -> Obs.Export.metrics_json_string ()
      | "breakdown" -> Obs.Export.breakdown_table ()
      | f -> failwith (Printf.sprintf "unknown format %S" f)
    in
    Obs.Trace.clear ();
    (match output with
    | "-" -> print_string body
    | path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc body);
      Printf.eprintf "doradd-trace-view: wrote %s (%d bytes)\n" path (String.length body));
    `Ok ()

open Cmdliner

let case_arg =
  Arg.(
    value & opt string "kv-pipeline"
    & info [ "case" ] ~docv:"CASE"
        ~doc:"Workload to trace: counters, kv, or kv-pipeline (full 7-stage timeline).")

let n_arg =
  Arg.(value & opt int 1_000 & info [ "n" ] ~docv:"REQS" ~doc:"Requests to run.")

let workers_arg =
  Arg.(value & opt int 2 & info [ "workers" ] ~docv:"W" ~doc:"Worker domains.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Log seed.")

let format_arg =
  Arg.(
    value & opt string "chrome"
    & info [ "format" ] ~docv:"FMT"
        ~doc:"Output: chrome (trace_event JSON), metrics (JSON dump), breakdown (table).")

let output_arg =
  Arg.(
    value & opt string "-"
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file ('-' for stdout).")

let cmd =
  let doc = "Trace a workload through the DORADD runtime and export its spans" in
  Cmd.v
    (Cmd.info "doradd-trace-view" ~version:"1.0.0" ~doc)
    Term.(
      ret (const main $ case_arg $ n_arg $ workers_arg $ seed_arg $ format_arg $ output_arg))

let () = exit (Cmd.eval cmd)

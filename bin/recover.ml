(* Durability driver: run a workload into a durable KV directory (with an
   optional seeded crash), recover it, and verify the recovered state
   against a serial oracle.  `cycle` chains kill/recover/verify across
   every crash-point class in a temp dir — the CI recovery smoke. *)

open Cmdliner
module Db = Doradd_db
module Persist = Doradd_persist
module Cp = Persist.Crashpoint
module Json = Doradd_obs.Json
module Rng = Doradd_stats.Rng
module Ycsb = Doradd_workload.Ycsb

(* ---- workload (reproducible from the manifest) --------------------- *)

let gen_txns ~seed ~n ~n_keys ~ops =
  let cfg =
    Ycsb.config ~n_keys ~ops_per_txn:ops ~hot_count:8 ~hot_stride:(n_keys / 8)
      Ycsb.Mod_contention
  in
  let raw = Ycsb.generate cfg (Rng.create (seed lxor 0x7265_6376)) ~n in
  Array.map
    (fun (t : Ycsb.txn) ->
      {
        Db.Kv.id = t.id;
        ops =
          Array.map
            (fun (o : Ycsb.op) ->
              { Db.Kv.key = o.key; kind = (if o.is_write then Db.Kv.Update else Db.Kv.Read) })
            t.ops;
      })
    raw

let serial_digest ~txns ~n_keys ~prefix =
  let s = Db.Store.create () in
  Db.Store.populate s ~n:n_keys;
  ignore (Db.Kv.run_sequential s (Array.sub txns 0 prefix));
  Db.Kv.state_digest s ~keys:(Array.init n_keys Fun.id)

(* ---- manifest ------------------------------------------------------ *)

type manifest = {
  seed : int;
  n : int;
  n_keys : int;
  ops : int;
  group_commit : int;
  snapshot_every : int;
}

let manifest_path dir = Filename.concat dir "manifest.json"

let write_manifest dir m =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let j =
    Json.Obj
      [
        ("seed", Json.Num (float_of_int m.seed));
        ("n", Json.Num (float_of_int m.n));
        ("n_keys", Json.Num (float_of_int m.n_keys));
        ("ops", Json.Num (float_of_int m.ops));
        ("group_commit", Json.Num (float_of_int m.group_commit));
        ("snapshot_every", Json.Num (float_of_int m.snapshot_every));
      ]
  in
  let oc = open_out (manifest_path dir) in
  output_string oc (Json.to_string j);
  close_out oc

let read_manifest dir =
  let path = manifest_path dir in
  if not (Sys.file_exists path) then failwith ("no manifest at " ^ path);
  let ic = open_in path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let j = Json.parse_exn s in
  let int_field name =
    match Json.member name j with
    | Some v -> (
      match Json.to_float v with
      | Some f -> int_of_float f
      | None -> failwith ("manifest: bad " ^ name))
    | None -> failwith ("manifest: missing " ^ name)
  in
  {
    seed = int_field "seed";
    n = int_field "n";
    n_keys = int_field "n_keys";
    ops = int_field "ops";
    group_commit = int_field "group_commit";
    snapshot_every = int_field "snapshot_every";
  }

let open_kv ~dir ~fsync m =
  Db.Durable_kv.open_ ~dir ~n_keys:m.n_keys ~max_txns:m.n ~group_commit:m.group_commit
    ~segment_bytes:4096 ~fsync ()

(* ---- run ----------------------------------------------------------- *)

type crash_spec = { point : Cp.point; nth : int }

let parse_crash_at s =
  let name, nth =
    match String.index_opt s ':' with
    | None -> (s, 1)
    | Some i -> (
      ( String.sub s 0 i,
        match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
        | Some k when k >= 1 -> k
        | _ -> -1 ))
  in
  if nth < 1 then Error (`Msg "bad crash count (want POINT[:K], K >= 1)")
  else
    match Cp.of_string name with
    | Some point -> Ok { point; nth }
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown crash point %S (one of: %s)" name
             (String.concat ", " (List.map Cp.to_string Cp.points))))

let crash_conv = Arg.conv (parse_crash_at, fun fmt c -> Format.fprintf fmt "%s:%d" (Cp.to_string c.point) c.nth)

(* Returns (crashed_at, acked, submitted). *)
let run_once ~dir ~fsync ~crash m =
  write_manifest dir m;
  let txns = gen_txns ~seed:m.seed ~n:m.n ~n_keys:m.n_keys ~ops:m.ops in
  let kv = open_kv ~dir ~fsync m in
  let start = Db.Durable_kv.recovered kv in
  (match crash with
  | None -> ()
  | Some { point; nth } ->
    let countdown = ref nth in
    Cp.arm (fun p ->
        if p = point then begin
          decr countdown;
          !countdown <= 0
        end
        else false));
  let crashed =
    try
      for i = start to m.n - 1 do
        ignore (Db.Durable_kv.submit kv txns.(i));
        if m.snapshot_every > 0 && i > 0 && i mod m.snapshot_every = 0 then
          ignore (Db.Durable_kv.snapshot kv)
      done;
      Db.Durable_kv.quiesce kv;
      None
    with Cp.Crashed p -> Some p
  in
  Cp.disarm ();
  let acked = Db.Durable_kv.durable kv in
  let submitted = Db.Durable_kv.submitted kv in
  (match crashed with
  | Some _ -> Db.Durable_kv.crash_close kv
  | None -> Db.Durable_kv.close kv);
  (crashed, acked, submitted)

(* Returns (stats, recovered, digest, digest_matches_serial_prefix). *)
let recover_once ~dir ~fsync m =
  let kv = open_kv ~dir ~fsync m in
  Db.Durable_kv.quiesce kv;
  let stats = Db.Durable_kv.recovery_stats kv in
  let recovered = Db.Durable_kv.recovered kv in
  let digest = Db.Durable_kv.state_digest kv in
  Db.Durable_kv.close kv;
  let txns = gen_txns ~seed:m.seed ~n:m.n ~n_keys:m.n_keys ~ops:m.ops in
  let expected = serial_digest ~txns ~n_keys:m.n_keys ~prefix:recovered in
  (stats, recovered, digest, digest = expected)

let stats_json (stats : Persist.Recovery.stats) =
  [
    ( "snapshot_watermark",
      match stats.snapshot_watermark with
      | None -> Json.Null
      | Some w -> Json.Num (float_of_int w) );
    ("wal_segments", Json.Num (float_of_int stats.wal_segments));
    ("wal_records", Json.Num (float_of_int stats.wal_records));
    ("replayed", Json.Num (float_of_int stats.replayed));
    ("skipped", Json.Num (float_of_int stats.skipped));
    ("torn", Json.Bool stats.torn);
    ("duration_ns", Json.Num (float_of_int stats.duration_ns));
  ]

(* ---- commands ------------------------------------------------------ *)

let dir_arg =
  Arg.(required & opt (some string) None & info [ "dir" ] ~docv:"DIR" ~doc:"Durable store directory.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")
let n_arg =
  Arg.(value & opt int 400 & info [ "txns" ] ~docv:"REQS" ~doc:"Transactions to submit.")

let n_keys_arg =
  Arg.(value & opt int 128 & info [ "n-keys" ] ~docv:"KEYS" ~doc:"Rows in the store.")

let group_commit_arg =
  Arg.(value & opt int 8 & info [ "group-commit" ] ~docv:"K" ~doc:"Group-commit batch size.")

let snapshot_every_arg =
  Arg.(
    value
    & opt int 64
    & info [ "snapshot-every" ] ~docv:"K" ~doc:"Snapshot cadence in transactions (0 = never).")

let crash_at_arg =
  Arg.(
    value
    & opt (some crash_conv) None
    & info [ "crash-at" ] ~docv:"POINT[:K]"
        ~doc:
          "Simulate a kill at the K-th (default first) hit of the crash point. Points: \
           pre-append, mid-append, pre-fsync, post-fsync, mid-rotation, mid-snapshot, \
           pre-snapshot-rename.")

let no_fsync_arg =
  Arg.(value & flag & info [ "no-fsync" ] ~doc:"Skip physical fsync (tests/benchmarks only).")

let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON on stdout.")

let mk_manifest seed n n_keys group_commit snapshot_every =
  { seed; n; n_keys; ops = 4; group_commit; snapshot_every }

let run_cmd =
  let doc = "Run a seeded workload into a durable directory, optionally crashing." in
  let run dir seed n n_keys group_commit snapshot_every crash no_fsync json =
    let m = mk_manifest seed n n_keys group_commit snapshot_every in
    let crashed, acked, submitted = run_once ~dir ~fsync:(not no_fsync) ~crash m in
    let crashed_str = match crashed with None -> "no" | Some p -> Cp.to_string p in
    if json then
      print_endline
        (Json.to_string
           (Json.Obj
              [
                ("crashed", match crashed with None -> Json.Null | Some p -> Json.Str (Cp.to_string p));
                ("acked_durable", Json.Num (float_of_int acked));
                ("submitted", Json.Num (float_of_int submitted));
              ]))
    else
      Printf.printf "run: %d submitted, %d acknowledged durable, crashed: %s\n" submitted acked
        crashed_str;
    match (crash, crashed) with
    | Some _, None ->
      prerr_endline "recover: --crash-at given but the crash point was never reached";
      1
    | _ -> 0
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ dir_arg $ seed_arg $ n_arg $ n_keys_arg $ group_commit_arg
      $ snapshot_every_arg $ crash_at_arg $ no_fsync_arg $ json_arg)

let recover_cmd =
  let doc = "Recover a durable directory and report what was restored." in
  let run dir no_fsync json =
    match read_manifest dir with
    | exception Failure msg ->
      prerr_endline ("doradd-recover: " ^ msg);
      2
    | m ->
    let stats, recovered, digest, ok = recover_once ~dir ~fsync:(not no_fsync) m in
    if json then
      print_endline
        (Json.to_string
           (Json.Obj
              (stats_json stats
              @ [
                  ("recovered", Json.Num (float_of_int recovered));
                  ("state_digest", Json.Str (Printf.sprintf "%x" (digest land max_int)));
                  ("digest_matches_serial", Json.Bool ok);
                ])))
    else begin
      print_endline (Persist.Recovery.stats_to_string stats);
      Printf.printf "recovered prefix: %d of %d; serial-oracle digest match: %b\n" recovered m.n
        ok
    end;
    if ok then 0 else 1
  in
  Cmd.v (Cmd.info "recover" ~doc) Term.(const run $ dir_arg $ no_fsync_arg $ json_arg)

let verify_cmd =
  let doc = "Verify a durable directory against the serial oracle (exit 1 on divergence)." in
  let run dir no_fsync =
    match read_manifest dir with
    | exception Failure msg ->
      prerr_endline ("doradd-recover: " ^ msg);
      2
    | m ->
    let _, recovered, _, ok = recover_once ~dir ~fsync:(not no_fsync) m in
    Printf.printf "verify: recovered %d transaction(s), digest %s\n" recovered
      (if ok then "matches serial oracle" else "DIVERGES from serial oracle");
    if ok then 0 else 1
  in
  Cmd.v (Cmd.info "verify" ~doc) Term.(const run $ dir_arg $ no_fsync_arg)

(* kill/recover/verify across every crash-point class: the CI smoke. *)
let cycle_cmd =
  let doc = "Kill/recover/verify cycles across all crash points in a temp dir (CI smoke)." in
  let points =
    [ Cp.Pre_fsync; Cp.Mid_append; Cp.Post_fsync; Cp.Mid_rotation; Cp.Mid_snapshot;
      Cp.Pre_snapshot_rename ]
  in
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  let run seed n no_fsync json =
    let failures = ref 0 in
    let reports =
      List.map
        (fun point ->
          let m = mk_manifest seed n 128 4 (n / 8) in
          let dir = Filename.temp_dir "doradd_recover" "" in
          Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
          (* snapshot-window points fire inside Snapshot.write; give the
             run enough snapshots, and crash a few hits in so there is
             both a snapshot and a WAL suffix to recover *)
          let crash = Some { point; nth = 3 } in
          let crashed, acked, submitted = run_once ~dir ~fsync:(not no_fsync) ~crash m in
          let stats, recovered, _, ok = recover_once ~dir ~fsync:(not no_fsync) m in
          let lost_ack = recovered < acked in
          let overrun = recovered > submitted in
          let pass = crashed <> None && ok && (not lost_ack) && not overrun in
          if not pass then incr failures;
          if not json then
            Printf.printf "%-20s crashed=%-3s acked=%-4d recovered=%-4d %s\n"
              (Cp.to_string point)
              (match crashed with None -> "no" | Some _ -> "yes")
              acked recovered
              (if pass then "OK" else "FAIL");
          Json.Obj
            (stats_json stats
            @ [
                ("point", Json.Str (Cp.to_string point));
                ("crashed", Json.Bool (crashed <> None));
                ("acked_durable", Json.Num (float_of_int acked));
                ("submitted", Json.Num (float_of_int submitted));
                ("recovered", Json.Num (float_of_int recovered));
                ("digest_matches_serial", Json.Bool ok);
                ("pass", Json.Bool pass);
              ]))
        points
    in
    if json then
      print_endline
        (Json.to_string
           (Json.Obj
              [
                ("seed", Json.Num (float_of_int seed));
                ("n", Json.Num (float_of_int n));
                ("cycles", Json.Arr reports);
                ("pass", Json.Bool (!failures = 0));
              ]));
    if !failures = 0 then 0 else 1
  in
  Cmd.v (Cmd.info "cycle" ~doc) Term.(const run $ seed_arg $ n_arg $ no_fsync_arg $ json_arg)

let cmd =
  let doc = "DORADD durability driver: crash, recover, verify" in
  Cmd.group (Cmd.info "doradd-recover" ~version:"1.0.0" ~doc)
    [ run_cmd; recover_cmd; verify_cmd; cycle_cmd ]

let () = exit (Cmd.eval' cmd)

(* doradd-loadgen: separate-process open-loop load generator.

   Poisson arrivals at a configured aggregate rate over N connections
   against a running server.exe; prints the latency distribution
   (p50/p99/p999 — open-loop, so queueing delay is measured, not
   hidden) and optionally writes the JSON report CI archives as an
   artifact. *)

module Net = Doradd_net
module Table = Doradd_stats.Table

let run host port connections rate requests seed workload_name remote_pct warehouses
    min_stamp json_path =
  let workload =
    match workload_name with
    | "kv" -> Ok Net.Loadgen.kv_default
    | "webserver" -> Ok Net.Loadgen.webserver
    | "tpcc" ->
      Ok
        (Net.Loadgen.Tpcc
           {
             config = { Net.Backend.small_tpcc_config with warehouses };
             remote_pct;
           })
    | "replica-read" ->
      Ok (Net.Loadgen.Replica_read { n_keys = 65_536; ops_per_txn = 1; min_stamp })
    | other ->
      Error (Printf.sprintf "unknown workload %S (kv|webserver|tpcc|replica-read)" other)
  in
  match workload with
  | Error msg -> `Error (false, msg)
  | Ok workload ->
    let report =
      Net.Loadgen.run
        {
          Net.Loadgen.host;
          port;
          connections;
          rate;
          requests;
          seed;
          workload;
          collect_replies = false;
        }
    in
    let fmt_ns ns = Printf.sprintf "%.1fus" (float_of_int ns /. 1e3) in
    Table.print
      ~title:
        (Printf.sprintf "doradd-loadgen: %s, %d conns, %s" workload_name connections
           (if rate > 0.0 then Printf.sprintf "%.0f req/s open-loop" rate
            else "unpaced"))
      ~header:[ "metric"; "value" ]
      [
        [ "sent"; string_of_int report.Net.Loadgen.sent ];
        [ "received"; string_of_int report.Net.Loadgen.received ];
        [ "malformed"; string_of_int report.Net.Loadgen.malformed ];
        [ "recv errors"; string_of_int report.Net.Loadgen.recv_errors ];
        [ "throughput"; Printf.sprintf "%.0f req/s" report.Net.Loadgen.throughput ];
        [ "latency mean"; fmt_ns (int_of_float report.Net.Loadgen.mean_ns) ];
        [ "latency p50"; fmt_ns report.Net.Loadgen.p50_ns ];
        [ "latency p99"; fmt_ns report.Net.Loadgen.p99_ns ];
        [ "latency p999"; fmt_ns report.Net.Loadgen.p999_ns ];
        [ "latency max"; fmt_ns report.Net.Loadgen.max_ns ];
      ];
    (match json_path with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Net.Loadgen.report_to_json report));
      Printf.printf "doradd-loadgen: wrote %s\n%!" path);
    if report.Net.Loadgen.received = requests then `Ok ()
    else `Error (false, "not every request was answered")

open Cmdliner

let host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc:"Server address.")

let port_arg =
  Arg.(value & opt int 7477 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Server port.")

let connections_arg =
  Arg.(value & opt int 8 & info [ "c"; "connections" ] ~docv:"N" ~doc:"Concurrent connections.")

let rate_arg =
  Arg.(
    value & opt float 0.0
    & info [ "r"; "rate" ] ~docv:"RPS"
        ~doc:"Aggregate open-loop arrival rate (Poisson), requests/second; 0 = unpaced.")

let requests_arg =
  Arg.(value & opt int 10_000 & info [ "n"; "requests" ] ~docv:"N" ~doc:"Total requests.")

let seed_arg = Arg.(value & opt int 42 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Workload seed.")

let workload_arg =
  Arg.(
    value & opt string "kv"
    & info [ "w"; "workload" ] ~docv:"NAME"
        ~doc:"Workload: kv, webserver (bimodal service times), tpcc, or replica-read \
              (stale-bounded reads against a replica's client port).")

let min_stamp_arg =
  Arg.(
    value & opt int 0
    & info [ "min-stamp" ] ~docv:"STAMP"
        ~doc:"replica-read: staleness bound — the replica holds each read until its \
              applied watermark covers $(docv).")

let remote_pct_arg =
  Arg.(
    value & opt int 10
    & info [ "remote-pct" ] ~docv:"PCT" ~doc:"TPCC: percent remote order lines.")

let warehouses_arg =
  Arg.(
    value & opt int 2
    & info [ "warehouses" ] ~docv:"N"
        ~doc:"TPCC: warehouse count (must match the server's).")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"PATH" ~doc:"Write the JSON report to $(docv).")

let cmd =
  let doc = "Open-loop load generator for doradd-server" in
  Cmd.v
    (Cmd.info "doradd-loadgen" ~version:"1.0.0" ~doc)
    Term.(
      ret
        (const run $ host_arg $ port_arg $ connections_arg $ rate_arg $ requests_arg
       $ seed_arg $ workload_arg $ remote_pct_arg $ warehouses_arg $ min_stamp_arg
       $ json_arg))

let () = exit (Cmd.eval cmd)

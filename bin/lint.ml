(* doradd-lint: footprint sanitizer + happens-before race checker.

   Replays the built-in workloads (counters, kv, kv-rw, kv-pipelined,
   ledger, tpcc) through the real runtime with the sanitizer armed, for
   each requested worker count, and emits a violation report — human-
   readable by default, machine-readable JSON with --json.  Exit code 0
   iff every replay is clean: no undeclared accesses, no writes under
   Read mode, no orphan accesses, and no conflicting access pair left
   unordered by the dispatcher's DAG.

   --self-test additionally replays a workload with a seeded undeclared
   access and verifies the sanitizer *catches* it (and that the corrected
   footprint comes back clean) — a canary that the instrumentation
   itself is alive. *)

module A = Doradd_analysis

let replay_spec (spec : A.Workloads.spec) ~seed ~n ~workers_list =
  List.map
    (fun workers ->
      { A.Report.workload = spec.A.Workloads.name; workers;
        outcome = spec.A.Workloads.replay ~seed ~n ~workers })
    workers_list

let self_test ~seed ~n =
  let buggy = (A.Workloads.buggy ~declared:false).A.Workloads.replay ~seed ~n ~workers:2 in
  let fixed = (A.Workloads.buggy ~declared:true).A.Workloads.replay ~seed ~n ~workers:2 in
  let caught_undeclared =
    List.exists
      (function Doradd_core.Sanitizer.Undeclared _ -> true | _ -> false)
      buggy.A.Sanitize.violations
  in
  let caught_race = buggy.A.Sanitize.hb.A.Hb.races <> [] in
  let fixed_clean = A.Sanitize.clean fixed in
  let ok = caught_undeclared && caught_race && fixed_clean in
  (* stderr: must not contaminate the machine-readable stdout report *)
  Printf.eprintf "self-test: undeclared %s, race %s, corrected-footprint %s => %s\n"
    (if caught_undeclared then "caught" else "MISSED")
    (if caught_race then "caught" else "MISSED")
    (if fixed_clean then "clean" else "DIRTY")
    (if ok then "PASS" else "FAIL");
  ok

open Cmdliner

let seed_arg = Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Log seed.")

let size_arg =
  Arg.(value & opt int 2_000 & info [ "n"; "size" ] ~docv:"REQS" ~doc:"Requests per log.")

let workers_arg =
  Arg.(
    value
    & opt (list int) [ 1; 2; 4 ]
    & info [ "w"; "workers" ] ~docv:"W,..." ~doc:"Worker counts to replay with.")

let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Emit a machine-readable JSON report.")

let self_test_arg =
  Arg.(
    value & flag
    & info [ "self-test" ]
        ~doc:"Also replay the seeded-bug workload and require the sanitizer to catch it.")

let apps_arg =
  let doc = "Workloads to lint (default: all built-ins)." in
  Arg.(value & pos_all string [] & info [] ~docv:"WORKLOAD" ~doc)

let main seed n workers_list json self_test_requested names =
  if List.exists (fun w -> w <= 0) workers_list then
    `Error (false, "worker counts must be positive")
  else begin
    let specs =
      if names = [] then A.Workloads.all
      else
        List.filter_map
          (fun name ->
            match A.Workloads.find name with
            | Some s -> Some s
            | None ->
              Printf.eprintf "doradd-lint: unknown workload %s\n" name;
              None)
          names
    in
    if specs = [] then `Error (false, "no known workload selected")
    else begin
      let report =
        List.concat_map (fun spec -> replay_spec spec ~seed ~n ~workers_list) specs
      in
      if json then print_endline (A.Report.to_json report)
      else A.Report.pp Format.std_formatter report;
      let self_ok = if self_test_requested then self_test ~seed ~n else true in
      if A.Report.clean report && self_ok then `Ok ()
      else `Error (false, "sanitizer violations detected")
    end
  end

let cmd =
  let doc = "Footprint sanitizer and happens-before race checker for DORADD workloads" in
  Cmd.v
    (Cmd.info "doradd-lint" ~version:"1.0.0" ~doc)
    Term.(
      ret
        (const main $ seed_arg $ size_arg $ workers_arg $ json_arg $ self_test_arg $ apps_arg))

let () = exit (Cmd.eval cmd)

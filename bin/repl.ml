(* doradd-repl: multi-process chaos driver for the replication layer.

   `cycle` boots a real 3-process cluster (one server.exe per node,
   separate WAL dirs), drives a closed-loop client through the
   reconnecting Session, SIGKILLs the primary at a seeded point
   mid-stream, and lets the survivors elect, recover and keep serving.
   Afterwards it verifies the paper-level claim offline, from the WALs
   themselves:

     surviving cluster state == serial replay of the acked durable prefix

   i.e. the new primary's log replays to exactly the digest the process
   printed on shutdown, every client-acked write sits in that log at its
   acked stamp with its acked result, and the two survivor logs agree on
   their common prefix.  The client-observed recovery window (last ack
   before the kill -> first ack after) is reported and, with --json,
   emitted machine-readably for CI trending. *)

module Net = Doradd_net
module Wal = Doradd_persist.Wal
module Table = Doradd_stats.Table

let pf = Printf.eprintf

(* ---- small utilities -------------------------------------------------- *)

let free_port () =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let p =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  Unix.close fd;
  p

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let spawn ~bin ~args ~log =
  let fd = Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let pid = Unix.create_process bin (Array.of_list (bin :: args)) Unix.stdin fd fd in
  Unix.close fd;
  pid

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* The node prints "... digest %d" as its last word on shutdown. *)
let parse_digest log =
  let s = try read_file log with Sys_error _ -> "" in
  let key = "digest " in
  let rec last_from i acc =
    match String.index_from_opt s i 'd' with
    | None -> acc
    | Some j ->
      if j + String.length key <= String.length s
         && String.sub s j (String.length key) = key
      then last_from (j + 1) (Some (j + String.length key))
      else last_from (j + 1) acc
  in
  match last_from 0 None with
  | None -> None
  | Some start ->
    let stop = ref start in
    if !stop < String.length s && s.[!stop] = '-' then incr stop;
    while !stop < String.length s && s.[!stop] >= '0' && s.[!stop] <= '9' do
      incr stop
    done;
    int_of_string_opt (String.sub s start (!stop - start))

let wait_listening ~port ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if Unix.gettimeofday () > deadline then false
    else
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) with
      | () ->
        Unix.close fd;
        true
      | exception Unix.Unix_error (_, _, _) ->
        Unix.close fd;
        Unix.sleepf 0.05;
        go ()
  in
  go ()

(* ---- the chaos cycle -------------------------------------------------- *)

type acked = { a_stamp : int; a_body : string; a_result : int }

let cycle seed ops kill_after server_bin dir no_fsync json =
  let dir =
    match dir with
    | Some d -> d
    | None ->
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "doradd-repl-%d-%d" (Unix.getpid ()) seed)
  in
  let server_bin =
    match server_bin with
    | Some b -> b
    | None -> Filename.concat (Filename.dirname Sys.executable_name) "server.exe"
  in
  if not (Sys.file_exists server_bin) then
    `Error (false, Printf.sprintf "server binary %s not found" server_bin)
  else begin
    let kill_after =
      if kill_after >= 0 then kill_after
      else (ops / 4) + (abs seed * 7919 mod max 1 (ops / 2))
    in
    mkdir_p dir;
    let cport = Array.init 3 (fun _ -> free_port ()) in
    let rport = Array.init 3 (fun _ -> free_port ()) in
    let data i = Filename.concat dir (Printf.sprintf "n%d" i) in
    let log i = Filename.concat dir (Printf.sprintf "n%d.log" i) in
    let peers_of i =
      List.filter (fun j -> j <> i) [ 0; 1; 2 ]
      |> List.map (fun j -> Printf.sprintf "%d@127.0.0.1:%d" j rport.(j))
      |> String.concat ","
    in
    let common i =
      [
        "--node-id"; string_of_int i;
        "--durable"; data i;
        "--port"; string_of_int cport.(i);
        "--repl-port"; string_of_int rport.(i);
        "--peers"; peers_of i;
        "--sync-replicas"; "1";
        "--backend"; "kv";
      ]
      @ (if no_fsync then [ "--no-fsync" ] else [])
    in
    let pids = Array.make 3 0 in
    pids.(0) <- spawn ~bin:server_bin ~args:(common 0 @ [ "--primary" ]) ~log:(log 0);
    for i = 1 to 2 do
      pids.(i) <-
        spawn ~bin:server_bin
          ~args:
            (common i @ [ "--backup-of"; Printf.sprintf "127.0.0.1:%d" rport.(0) ])
          ~log:(log i)
    done;
    let cleanup () =
      Array.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error (_, _, _) -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error (_, _, _) -> ())
        pids
    in
    Fun.protect ~finally:cleanup @@ fun () ->
    if not (Array.for_all (fun p -> wait_listening ~port:p ~timeout_s:15.0) cport)
    then `Error (false, "cluster did not come up (see logs in " ^ dir ^ ")")
    else begin
      pf "repl-cycle: cluster up in %s (kill primary after %d acks)\n%!" dir
        kill_after;
      let addrs = Array.to_list (Array.map (fun p -> ("127.0.0.1", p)) cport) in
      let session = Net.Client.Session.create ~addrs () in
      let rng = Random.State.make [| seed; 0xd0add |] in
      let body _i =
        let n_ops = 1 + Random.State.int rng 3 in
        Net.Wire.encode_kv
          {
            Net.Wire.work = 0;
            ops =
              Array.init n_ops (fun _ ->
                  {
                    Net.Wire.key = Random.State.int rng 4096;
                    update = Random.State.bool rng;
                  });
          }
      in
      let acked = ref [] in
      let n_acked = ref 0 in
      let failed = ref 0 in
      let killed = ref false in
      let t_kill = ref 0.0 in
      let t_recovered = ref 0.0 in
      for i = 0 to ops - 1 do
        let b = body i in
        (match Net.Client.Session.call session ~req_id:i ~body:b with
        | Ok r when r.Net.Wire.status = Net.Wire.status_ok ->
          incr n_acked;
          if !killed && !t_recovered = 0.0 then t_recovered := Unix.gettimeofday ();
          acked := { a_stamp = r.Net.Wire.stamp; a_body = b; a_result = r.Net.Wire.result } :: !acked
        | Ok _ | Error _ -> incr failed);
        if (not !killed) && !n_acked >= kill_after then begin
          killed := true;
          t_kill := Unix.gettimeofday ();
          pf "repl-cycle: SIGKILL primary (pid %d) after %d acks\n%!" pids.(0)
            !n_acked;
          Unix.kill pids.(0) Sys.sigkill;
          ignore (Unix.waitpid [] pids.(0))
        end
      done;
      let events = Net.Client.Session.events session in
      let timeouts =
        List.length (List.filter (function `Timeout _ -> true | _ -> false) events)
      in
      let bounces =
        List.length
          (List.filter (function `Not_primary _ -> true | _ -> false) events)
      in
      let recovery_window_ms =
        if !t_recovered > 0.0 then (!t_recovered -. !t_kill) *. 1000.0 else -1.0
      in
      (* Who is primary now?  Probe the survivors with a no-op write. *)
      let probe_write port =
        match Net.Client.connect ~port () with
        | exception Unix.Unix_error (_, _, _) -> None
        | c ->
          Fun.protect
            ~finally:(fun () -> Net.Client.close c)
            (fun () ->
              Net.Client.send c ~req_id:999_000
                ~body:(Net.Wire.encode_kv { Net.Wire.work = 0; ops = [||] });
              match Net.Client.recv ~timeout_s:5.0 c with
              | Ok r -> Some r.Net.Wire.status
              | Error _ -> None)
      in
      let new_primary =
        if probe_write cport.(1) = Some Net.Wire.status_ok then 1
        else if probe_write cport.(2) = Some Net.Wire.status_ok then 2
        else -1
      in
      let replica = if new_primary = 1 then 2 else 1 in
      (* Stale-bounded reads against the surviving replica. *)
      let last_stamp =
        List.fold_left (fun m a -> max m a.a_stamp) (-1) !acked
      in
      let reads_attempted = 10 in
      let reads_ok = ref 0 in
      (if new_primary > 0 && last_stamp >= 0 then
         match Net.Client.connect ~port:cport.(replica) () with
         | exception Unix.Unix_error (_, _, _) -> ()
         | c ->
           Fun.protect
             ~finally:(fun () -> Net.Client.close c)
             (fun () ->
               for i = 0 to reads_attempted - 1 do
                 let inner =
                   Net.Wire.encode_kv
                     {
                       Net.Wire.work = 0;
                       ops = [| { Net.Wire.key = i; update = false } |];
                     }
                 in
                 Net.Client.send c ~req_id:(998_000 + i)
                   ~body:(Net.Wire.encode_read ~min_stamp:last_stamp ~body:inner);
                 match Net.Client.recv ~timeout_s:5.0 c with
                 | Ok r
                   when r.Net.Wire.status = Net.Wire.status_ok
                        && r.Net.Wire.stamp >= last_stamp ->
                   incr reads_ok
                 | Ok _ | Error _ -> ()
               done));
      (* Graceful stop for the survivors so they print their digests. *)
      List.iter
        (fun i ->
          try Unix.kill pids.(i) Sys.sigterm with Unix.Unix_error (_, _, _) -> ())
        [ 1; 2 ];
      List.iter (fun i -> ignore (Unix.waitpid [] pids.(i))) [ 1; 2 ];
      (* ---- offline verification from the WALs ------------------------- *)
      let logs = Array.init 3 (fun i -> (Wal.scan ~dir:(data i)).Wal.records) in
      let survivor_a = logs.(1) and survivor_b = logs.(2) in
      let common = min (Array.length survivor_a) (Array.length survivor_b) in
      let prefix_ok = ref true in
      for s = 0 to common - 1 do
        if survivor_a.(s) <> survivor_b.(s) then prefix_ok := false
      done;
      let primary_log = if new_primary > 0 then logs.(new_primary) else [||] in
      let bodies = Array.map snd primary_log in
      let replay_digest, replay_results =
        Net.Backend.replay_serial (fun () -> Net.Backend.kv ()) bodies
      in
      let printed_digest =
        if new_primary > 0 then parse_digest (log new_primary) else None
      in
      let digest_match = printed_digest = Some replay_digest in
      let lost_acked = ref 0 in
      List.iter
        (fun a ->
          let present =
            a.a_stamp < Array.length primary_log
            && snd primary_log.(a.a_stamp) = a.a_body
            && replay_results.(a.a_stamp) = Some a.a_result
          in
          if not present then incr lost_acked)
        !acked;
      let ok =
        !prefix_ok && digest_match && !lost_acked = 0 && new_primary > 0
        && !reads_ok = reads_attempted
      in
      pf
        "repl-cycle: %d/%d acked (%d failed, %d timeouts, %d bounces), new \
         primary n%d, recovery %.1f ms\n\
         repl-cycle: prefix_ok=%b digest_match=%b (replay %d) lost_acked=%d \
         replica_reads %d/%d => %s\n\
         %!"
        !n_acked ops !failed timeouts bounces new_primary recovery_window_ms
        !prefix_ok digest_match replay_digest !lost_acked !reads_ok
        reads_attempted
        (if ok then "PASS" else "FAIL");
      if json then
        Printf.printf
          "{ \"seed\": %d, \"ops\": %d, \"kill_after\": %d, \"acked\": %d, \
           \"failed\": %d, \"timeouts\": %d, \"not_primary_bounces\": %d, \
           \"new_primary\": %d, \"recovery_window_ms\": %.3f, \"log_len\": %d, \
           \"prefix_ok\": %b, \"digest_match\": %b, \"replay_digest\": %d, \
           \"lost_acked\": %d, \"replica_reads_ok\": %d, \
           \"replica_reads_attempted\": %d, \"pass\": %b }\n"
          seed ops kill_after !n_acked !failed timeouts bounces new_primary
          recovery_window_ms (Array.length primary_log) !prefix_ok digest_match
          replay_digest !lost_acked !reads_ok reads_attempted ok;
      if ok then `Ok () else `Error (false, "replication cycle failed verification")
    end
  end

(* ---- replica-read bench ------------------------------------------------ *)

(* The off-primary scaling row: boot primary + one backup, preload writes
   through the primary, then measure stale-bounded read throughput against
   the replica's client port — first alone, then while the primary is
   absorbing a concurrent write stream.  Staleness is checked from the
   collected replies: every read's stamp must be >= the preload watermark. *)
let bench seed requests connections server_bin dir no_fsync json =
  let dir =
    match dir with
    | Some d -> d
    | None ->
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "doradd-replbench-%d-%d" (Unix.getpid ()) seed)
  in
  let server_bin =
    match server_bin with
    | Some b -> b
    | None -> Filename.concat (Filename.dirname Sys.executable_name) "server.exe"
  in
  if not (Sys.file_exists server_bin) then
    `Error (false, Printf.sprintf "server binary %s not found" server_bin)
  else begin
    mkdir_p dir;
    let cport = Array.init 2 (fun _ -> free_port ()) in
    let rport = Array.init 2 (fun _ -> free_port ()) in
    let data i = Filename.concat dir (Printf.sprintf "n%d" i) in
    let log i = Filename.concat dir (Printf.sprintf "n%d.log" i) in
    let peers_of i =
      let j = 1 - i in
      Printf.sprintf "%d@127.0.0.1:%d" j rport.(j)
    in
    let common i =
      [
        "--node-id"; string_of_int i;
        "--durable"; data i;
        "--port"; string_of_int cport.(i);
        "--repl-port"; string_of_int rport.(i);
        "--peers"; peers_of i;
        "--sync-replicas"; "1";
        "--backend"; "kv";
      ]
      @ (if no_fsync then [ "--no-fsync" ] else [])
    in
    let pids = Array.make 2 0 in
    pids.(0) <- spawn ~bin:server_bin ~args:(common 0 @ [ "--primary" ]) ~log:(log 0);
    pids.(1) <-
      spawn ~bin:server_bin
        ~args:(common 1 @ [ "--backup-of"; Printf.sprintf "127.0.0.1:%d" rport.(0) ])
        ~log:(log 1);
    let cleanup () =
      Array.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error (_, _, _) -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error (_, _, _) -> ())
        pids
    in
    Fun.protect ~finally:cleanup @@ fun () ->
    if not (Array.for_all (fun p -> wait_listening ~port:p ~timeout_s:15.0) cport)
    then `Error (false, "cluster did not come up (see logs in " ^ dir ^ ")")
    else begin
      let writes : Net.Loadgen.workload =
        Net.Loadgen.Kv
          {
            n_keys = 4096;
            ops_per_txn = 2;
            update_pct = 100;
            heavy_pct = 0;
            light_work = 0;
            heavy_work = 0;
          }
      in
      let lg ?(collect = false) ~port ~workload ~seed () =
        Net.Loadgen.run
          {
            Net.Loadgen.default_cfg with
            port;
            connections;
            requests;
            seed;
            workload;
            collect_replies = collect;
          }
      in
      pf "repl-bench: cluster up in %s, %d reqs x %d conns per phase\n%!" dir
        requests connections;
      (* Phase 1: preload the primary; the max acked stamp is the bound
         every replica read must cover. *)
      let w0 = lg ~collect:true ~port:cport.(0) ~workload:writes ~seed () in
      let wmark =
        Array.fold_left (fun m (s, _, _) -> max m s) (-1) w0.Net.Loadgen.replies
      in
      (* Phase 2: stale-bounded reads against the replica, alone. *)
      let reads : Net.Loadgen.workload =
        Net.Loadgen.Replica_read { n_keys = 4096; ops_per_txn = 1; min_stamp = wmark }
      in
      let r0 = lg ~collect:true ~port:cport.(1) ~workload:reads ~seed:(seed + 1) () in
      let stale_ok =
        Array.for_all
          (fun (s, status, _) -> status = Net.Wire.status_ok && s >= wmark)
          r0.Net.Loadgen.replies
        && Array.length r0.Net.Loadgen.replies = requests
      in
      (* Phase 3: the same read stream while the primary absorbs writes —
         the off-primary claim.  Latency histograms are shared, so only
         the per-report throughputs are meaningful here. *)
      let cw = ref None in
      let t =
        Thread.create
          (fun () -> cw := Some (lg ~port:cport.(0) ~workload:writes ~seed:(seed + 2) ()))
          ()
      in
      let cr = lg ~port:cport.(1) ~workload:reads ~seed:(seed + 3) () in
      Thread.join t;
      let cw = Option.get !cw in
      Array.iter
        (fun pid ->
          try Unix.kill pid Sys.sigterm with Unix.Unix_error (_, _, _) -> ())
        pids;
      Array.iter (fun pid -> ignore (Unix.waitpid [] pid)) pids;
      let fmt_us ns = Printf.sprintf "%.1fus" (float_of_int ns /. 1e3) in
      let rps r = Printf.sprintf "%.0f req/s" r.Net.Loadgen.throughput in
      Table.print
        ~title:
          (Printf.sprintf
             "doradd-repl bench: replica reads off-primary (stale bound = stamp %d)"
             wmark)
        ~header:[ "phase"; "throughput"; "p50"; "p99"; "verdict" ]
        [
          [ "primary writes"; rps w0; fmt_us w0.Net.Loadgen.p50_ns;
            fmt_us w0.Net.Loadgen.p99_ns; "-" ];
          [ "replica reads (alone)"; rps r0; fmt_us r0.Net.Loadgen.p50_ns;
            fmt_us r0.Net.Loadgen.p99_ns;
            (if stale_ok then "stale bound held" else "STALE READ") ];
          [ "replica reads + writes"; rps cr; "-"; "-"; "-" ];
          [ "concurrent writes"; rps cw; "-"; "-"; "-" ];
        ];
      let complete r = r.Net.Loadgen.received = requests in
      let ok = stale_ok && complete w0 && complete r0 && complete cr && complete cw in
      if json then
        Printf.printf
          "{ \"seed\": %d, \"requests\": %d, \"connections\": %d, \"wmark\": %d, \
           \"write_rps\": %.1f, \"replica_read_rps\": %.1f, \
           \"concurrent_read_rps\": %.1f, \"concurrent_write_rps\": %.1f, \
           \"stale_bound_held\": %b, \"pass\": %b }\n"
          seed requests connections wmark w0.Net.Loadgen.throughput
          r0.Net.Loadgen.throughput cr.Net.Loadgen.throughput
          cw.Net.Loadgen.throughput stale_ok ok;
      if ok then `Ok () else `Error (false, "replica-read bench failed verification")
    end
  end

open Cmdliner

let seed_arg =
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Chaos seed.")

let ops_arg =
  Arg.(value & opt int 300 & info [ "n"; "ops" ] ~docv:"N" ~doc:"Client operations.")

let kill_after_arg =
  Arg.(
    value & opt int (-1)
    & info [ "kill-after" ] ~docv:"K"
        ~doc:"SIGKILL the primary after $(docv) acked ops (default: seed-derived).")

let server_bin_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "server-bin" ] ~docv:"PATH"
        ~doc:"server.exe to spawn (default: sibling of this binary).")

let dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dir" ] ~docv:"DIR" ~doc:"Scratch directory (default: under TMPDIR).")

let no_fsync_arg =
  Arg.(value & flag & info [ "no-fsync" ] ~doc:"Skip physical fsync in the nodes.")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit a JSON report on stdout.")

let cycle_cmd =
  let doc = "Boot a 3-process cluster, kill the primary, verify the survivors" in
  Cmd.v
    (Cmd.info "cycle" ~doc)
    Term.(
      ret
        (const cycle $ seed_arg $ ops_arg $ kill_after_arg $ server_bin_arg
       $ dir_arg $ no_fsync_arg $ json_arg))

let requests_arg =
  Arg.(
    value & opt int 4000
    & info [ "requests" ] ~docv:"N" ~doc:"Requests per bench phase.")

let connections_arg =
  Arg.(
    value & opt int 4
    & info [ "c"; "connections" ] ~docv:"N" ~doc:"Concurrent connections per phase.")

let bench_cmd =
  let doc =
    "Measure stale-bounded read throughput against a replica, alone and while \
     the primary absorbs a concurrent write stream"
  in
  Cmd.v
    (Cmd.info "bench" ~doc)
    Term.(
      ret
        (const bench $ seed_arg $ requests_arg $ connections_arg $ server_bin_arg
       $ dir_arg $ no_fsync_arg $ json_arg))

let cmd =
  let doc = "Chaos driver for DORADD replication" in
  Cmd.group (Cmd.info "doradd-repl" ~version:"1.0.0" ~doc) [ cycle_cmd; bench_cmd ]

let () = exit (Cmd.eval cmd)

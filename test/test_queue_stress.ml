(* Domain-based stress and property tests for the queue substrate, beyond
   the unit tests in test_queue.ml: sustained cross-domain traffic at tiny
   (wrap-heavy) capacities, full/empty boundary churn, and the DST fault
   hooks under concurrency.  The host may have one core — OS preemption of
   the underlying threads still interleaves the domains, so these are real
   (if slowly interleaved) concurrency tests. *)

open Doradd_queue

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* SPSC: one producer domain, one consumer domain                      *)
(* ------------------------------------------------------------------ *)

(* FIFO order, no loss, no duplication, across many wraps of a tiny ring. *)
let spsc_stress ~capacity ~items () =
  let q = Spsc.create ~dummy:0 ~capacity in
  let consumer =
    Domain.spawn (fun () ->
        let b = Backoff.create () in
        let expected = ref 0 in
        let sum = ref 0 in
        while !expected < items do
          match Spsc.try_pop q with
          | Some v ->
            Backoff.reset b;
            (* strict FIFO: the single consumer must see 0,1,2,... *)
            if v <> !expected then
              Alcotest.failf "spsc out of order: got %d expected %d" v !expected;
            sum := !sum + v;
            incr expected
          | None -> Backoff.once b
        done;
        !sum)
  in
  for i = 0 to items - 1 do
    Spsc.push q i
  done;
  let sum = Domain.join consumer in
  checki "all items, each once" (items * (items - 1) / 2) sum;
  checki "drained" 0 (Spsc.length q)

let test_spsc_stress_tiny () = spsc_stress ~capacity:2 ~items:1_200 ()

let test_spsc_stress_paper_depth () = spsc_stress ~capacity:4 ~items:1_600 ()

(* The producer's push must block (not drop) on a full ring: count how
   many try_push rejections a slow consumer provokes, then verify nothing
   was lost. *)
let test_spsc_backpressure () =
  let q = Spsc.create ~dummy:0 ~capacity:2 in
  let items = 800 in
  let consumer =
    Domain.spawn (fun () ->
        let got = ref 0 in
        let b = Backoff.create () in
        while !got < items do
          match Spsc.try_pop q with
          | Some _ ->
            Backoff.reset b;
            incr got
          | None -> Backoff.once b
        done;
        !got)
  in
  let rejected = ref 0 in
  for i = 0 to items - 1 do
    let b = Backoff.create () in
    while not (Spsc.try_push q i) do
      incr rejected;
      Backoff.once b
    done
  done;
  checki "consumer saw every item" items (Domain.join consumer);
  (* a depth-2 ring against a same-speed consumer must hit full sometimes;
     if it never did, the test exercised nothing *)
  checkb "backpressure exercised" true (!rejected > 0)

(* ------------------------------------------------------------------ *)
(* MPMC: many producer and consumer domains                            *)
(* ------------------------------------------------------------------ *)

(* No loss, no duplication under p producers / c consumers: every pushed
   value is popped exactly once.  Values are tagged per producer so
   duplicates can't cancel out in the sum. *)
let mpmc_stress ~capacity ~producers ~consumers ~per_producer () =
  let q = Mpmc.create ~dummy:0 ~capacity in
  let total = producers * per_producer in
  let popped = Atomic.make 0 in
  let seen = Array.make total (Atomic.make 0) in
  Array.iteri (fun i _ -> seen.(i) <- Atomic.make 0) seen;
  let cons =
    Array.init consumers (fun _ ->
        Domain.spawn (fun () ->
            let b = Backoff.create () in
            let continue_ = ref true in
            while !continue_ do
              (match Mpmc.try_pop q with
              | Some v ->
                Backoff.reset b;
                Atomic.incr seen.(v);
                Atomic.incr popped
              | None -> Backoff.once b);
              if Atomic.get popped >= total then continue_ := false
            done))
  in
  let prods =
    Array.init producers (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to per_producer - 1 do
              Mpmc.push q ((p * per_producer) + i)
            done))
  in
  Array.iter Domain.join prods;
  Array.iter Domain.join cons;
  checki "popped count" total (Atomic.get popped);
  Array.iteri
    (fun v c ->
      if Atomic.get c <> 1 then
        Alcotest.failf "value %d popped %d times (want exactly 1)" v (Atomic.get c))
    seen;
  checki "drained" 0 (Mpmc.length q)

let test_mpmc_stress_2p2c () = mpmc_stress ~capacity:4 ~producers:2 ~consumers:2 ~per_producer:500 ()

let test_mpmc_stress_3p1c () = mpmc_stress ~capacity:2 ~producers:3 ~consumers:1 ~per_producer:500 ()

let test_mpmc_stress_1p3c () = mpmc_stress ~capacity:16 ~producers:1 ~consumers:3 ~per_producer:1_500 ()

(* Fault hooks under concurrency: arm a deterministic per-probe pattern on
   both sides while domains hammer the queue.  Spurious full/empty must
   only delay clients that retry — never lose or duplicate an element —
   and clear_faults must restore clean behaviour. *)
let test_mpmc_faults_no_loss () =
  let q = Mpmc.create ~dummy:0 ~capacity:4 in
  let push_probes = Atomic.make 0 and pop_probes = Atomic.make 0 in
  Mpmc.set_faults q
    ~push:(Some (fun () -> Atomic.fetch_and_add push_probes 1 mod 3 = 0))
    ~pop:(Some (fun () -> Atomic.fetch_and_add pop_probes 1 mod 5 = 0));
  let total = 800 in
  let popped = Atomic.make 0 in
  let sum = Atomic.make 0 in
  let consumer =
    Domain.spawn (fun () ->
        let b = Backoff.create () in
        while Atomic.get popped < total do
          match Mpmc.try_pop q with
          | Some v ->
            Backoff.reset b;
            ignore (Atomic.fetch_and_add sum v);
            Atomic.incr popped
          | None -> Backoff.once b
        done)
  in
  for i = 1 to total do
    Mpmc.push q i
  done;
  Domain.join consumer;
  checki "faulted run lost nothing" (total * (total + 1) / 2) (Atomic.get sum);
  checkb "push faults fired" true (Atomic.get push_probes > 0);
  checkb "pop faults fired" true (Atomic.get pop_probes > 0);
  Mpmc.clear_faults q;
  (* hooks gone: a full/empty cycle behaves exactly as unfaulted *)
  checkb "clean push" true (Mpmc.try_push q 1);
  Alcotest.check (Alcotest.option Alcotest.int) "clean pop" (Some 1) (Mpmc.try_pop q)

let test_spsc_faults_no_loss () =
  let q = Spsc.create ~dummy:0 ~capacity:2 in
  let k = Atomic.make 0 in
  Spsc.set_faults q
    ~push:(Some (fun () -> Atomic.fetch_and_add k 1 mod 4 = 0))
    ~pop:(Some (fun () -> Atomic.fetch_and_add k 1 mod 7 = 0));
  let total = 800 in
  let consumer =
    Domain.spawn (fun () ->
        let b = Backoff.create () in
        let expected = ref 0 in
        while !expected < total do
          match Spsc.try_pop q with
          | Some v ->
            Backoff.reset b;
            if v <> !expected then Alcotest.failf "faulted spsc out of order at %d" v;
            incr expected
          | None -> Backoff.once b
        done)
  in
  for i = 0 to total - 1 do
    Spsc.push q i
  done;
  Domain.join consumer;
  Spsc.clear_faults q;
  checki "drained" 0 (Spsc.length q)

(* ------------------------------------------------------------------ *)
(* Properties (single-domain): boundary behaviour at every capacity    *)
(* ------------------------------------------------------------------ *)

(* For any capacity request and any push/pop script, the queue behaves
   like a bounded FIFO of the rounded capacity. *)
let prop_mpmc_bounded_fifo =
  QCheck.Test.make ~name:"mpmc matches bounded-fifo model" ~count:300
    QCheck.(pair (int_range 1 9) (small_list bool))
    (fun (capacity, script) ->
      (* QCheck's int_range shrinker can step below the range *)
      let capacity = max 1 capacity in
      let q = Mpmc.create ~dummy:0 ~capacity in
      let cap = Mpmc.capacity q in
      let model = Queue.create () in
      let next = ref 0 in
      List.for_all
        (fun is_push ->
          if is_push then begin
            let fits = Queue.length model < cap in
            let ok = Mpmc.try_push q !next in
            if ok then Queue.push !next model;
            incr next;
            ok = fits
          end
          else
            match (Mpmc.try_pop q, Queue.is_empty model) with
            | None, true -> true
            | Some v, false -> v = Queue.pop model
            | _ -> false)
        script
      && Mpmc.length q = Queue.length model)

let prop_spsc_bounded_fifo =
  QCheck.Test.make ~name:"spsc matches bounded-fifo model" ~count:300
    QCheck.(pair (int_range 1 9) (small_list bool))
    (fun (capacity, script) ->
      let capacity = max 1 capacity in
      let q = Spsc.create ~dummy:0 ~capacity in
      let cap = Spsc.capacity q in
      let model = Queue.create () in
      let next = ref 0 in
      List.for_all
        (fun is_push ->
          if is_push then begin
            let fits = Queue.length model < cap in
            let ok = Spsc.try_push q !next in
            if ok then Queue.push !next model;
            incr next;
            ok = fits
          end
          else
            match (Spsc.try_pop q, Queue.is_empty model) with
            | None, true -> true
            | Some v, false -> v = Queue.pop model
            | _ -> false)
        script
      && Spsc.length q = Queue.length model)

(* Armed faults only ever turn a success into a refusal — clients that
   retry observe the same FIFO; a model tracking "faulted this probe"
   stays exact. *)
let prop_mpmc_faults_are_refusals =
  QCheck.Test.make ~name:"mpmc fault hooks only refuse, never corrupt" ~count:300
    QCheck.(triple (int_range 1 5) (small_list bool) (pair small_nat small_nat))
    (fun (capacity, script, (pf, qf)) ->
      let capacity = max 1 capacity in
      let q = Mpmc.create ~dummy:0 ~capacity in
      let cap = Mpmc.capacity q in
      let pushes = ref 0 and pops = ref 0 in
      let push_faulted () =
        incr pushes;
        pf > 0 && !pushes mod (pf + 1) = 0
      in
      let pop_faulted () =
        incr pops;
        qf > 0 && !pops mod (qf + 1) = 0
      in
      Mpmc.set_faults q ~push:(Some push_faulted) ~pop:(Some pop_faulted);
      let model = Queue.create () in
      let next = ref 0 in
      List.for_all
        (fun is_push ->
          if is_push then begin
            (* replicate the hook's decision: probe order is ours alone *)
            let will_fault = pf > 0 && (!pushes + 1) mod (pf + 1) = 0 in
            let fits = Queue.length model < cap in
            let ok = Mpmc.try_push q !next in
            if ok then Queue.push !next model;
            incr next;
            ok = ((not will_fault) && fits)
          end
          else begin
            let will_fault = qf > 0 && (!pops + 1) mod (qf + 1) = 0 in
            match (Mpmc.try_pop q, will_fault, Queue.is_empty model) with
            | None, true, _ -> true
            | None, false, true -> true
            | Some v, false, false -> v = Queue.pop model
            | _ -> false
          end)
        script)

let () =
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "doradd queue stress"
    [
      ( "spsc-stress",
        [
          slow "tiny ring, wrap-heavy" test_spsc_stress_tiny;
          slow "paper depth 4, wrap-heavy" test_spsc_stress_paper_depth;
          slow "backpressure on full" test_spsc_backpressure;
          slow "fault hooks lose nothing" test_spsc_faults_no_loss;
        ] );
      ( "mpmc-stress",
        [
          slow "2 producers, 2 consumers" test_mpmc_stress_2p2c;
          slow "3 producers, 1 consumer" test_mpmc_stress_3p1c;
          slow "1 producer, 3 consumers" test_mpmc_stress_1p3c;
          slow "fault hooks lose nothing" test_mpmc_faults_no_loss;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_mpmc_bounded_fifo;
          QCheck_alcotest.to_alcotest prop_spsc_bounded_fifo;
          QCheck_alcotest.to_alcotest prop_mpmc_faults_are_refusals;
        ] );
    ]

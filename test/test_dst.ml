(* Tests for the deterministic-simulation harness itself: seeded decision
   streams, plan derivation, the sim-level scheduler oracles, the
   serial-equivalence oracle, shrinking, and the end-to-end fuzz loop
   (including the self-test canaries CI gates on). *)

module Dst = Doradd_dst
module D = Dst.Decision
module P = Dst.Plan

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ------------------------------------------------------------------ *)
(* Decision streams                                                    *)
(* ------------------------------------------------------------------ *)

let test_decision_determinism () =
  (* same (seed, name): same sequence, draw for draw *)
  let draw seed =
    let s = D.shared (D.create ~seed) "x" in
    List.init 64 (fun _ -> D.pick s ~n:1000)
  in
  checkb "equal seeds, equal streams" true (draw 42 = draw 42);
  checkb "different seeds diverge" true (draw 42 <> draw 43);
  (* different names on the same seed are independent streams *)
  let dec = D.create ~seed:7 in
  let a = D.shared dec "a" and b = D.shared dec "b" in
  checkb "named streams differ" true
    (List.init 32 (fun _ -> D.pick a ~n:1_000_000)
    <> List.init 32 (fun _ -> D.pick b ~n:1_000_000))

let test_decision_flip_extremes () =
  let s = D.shared (D.create ~seed:1) "flip" in
  for _ = 1 to 100 do
    checkb "p=0 never fires" false (D.flip s ~per_64k:0)
  done;
  checki "p=0 consumes no draws" 0 (D.taken s);
  for _ = 1 to 100 do
    checkb "p=1 always fires" true (D.flip s ~per_64k:65536)
  done

let test_decision_flip_rate () =
  let s = D.shared (D.create ~seed:2) "rate" in
  let fired = ref 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    if D.flip s ~per_64k:16_384 (* 25% *) then incr fired
  done;
  let rate = float_of_int !fired /. float_of_int trials in
  checkb "25% flip lands near 25%" true (rate > 0.22 && rate < 0.28)

(* ------------------------------------------------------------------ *)
(* Plans                                                               *)
(* ------------------------------------------------------------------ *)

let test_plan_derivation () =
  let p = P.derive ~seed:11 in
  checkb "same seed, same plan" true (p = P.derive ~seed:11);
  checkb "workers in range" true (p.P.workers >= 1 && p.P.workers <= 3);
  let q = P.quiet ~seed:11 in
  checkb "quiet plan has no active classes" true (P.active q = []);
  checki "quiet keeps structure" p.P.workers q.P.workers;
  (* disabling every class = quiet *)
  checkb "disable_all reaches quiet" true (P.disable_all p P.class_names = q);
  Alcotest.check_raises "unknown class rejected"
    (Invalid_argument "Plan.disable: unknown class warp") (fun () ->
      ignore (P.disable p "warp"))

let test_plans_vary_across_seeds () =
  (* the deriver must actually explore the space: over 64 seeds expect
     every worker count and at least one seed per perturbation class *)
  let plans = List.init 64 (fun s -> P.derive ~seed:s) in
  List.iter
    (fun w -> checkb "worker count explored" true (List.exists (fun p -> p.P.workers = w) plans))
    [ 1; 2; 3 ];
  List.iter
    (fun cls ->
      checkb (cls ^ " explored") true (List.exists (fun p -> List.mem cls (P.active p)) plans))
    P.class_names

(* ------------------------------------------------------------------ *)
(* Sim-level DST                                                       *)
(* ------------------------------------------------------------------ *)

let test_sim_deterministic () =
  let a = Dst.Sim_dst.run ~seed:5 ~n:128 ~workers:3 ~bug:Dst.Sim_dst.No_bug in
  let b = Dst.Sim_dst.run ~seed:5 ~n:128 ~workers:3 ~bug:Dst.Sim_dst.No_bug in
  checkb "bit-identical outcomes" true (a = b);
  checkb "clean run passes oracles" true (Dst.Sim_dst.ok a);
  checki "all requests complete" a.Dst.Sim_dst.total a.Dst.Sim_dst.completed

let test_sim_seeds_all_clean () =
  for seed = 1 to 40 do
    let o = Dst.Sim_dst.run ~seed ~n:96 ~workers:(1 + (seed mod 3)) ~bug:Dst.Sim_dst.No_bug in
    if not (Dst.Sim_dst.ok o) then
      Alcotest.failf "sim seed %d flagged a correct scheduler: %s" seed (Dst.Sim_dst.to_string o)
  done

let test_sim_catches_static_assignment () =
  let o = Dst.Sim_dst.run ~seed:1 ~n:96 ~workers:3 ~bug:Dst.Sim_dst.Static_assignment in
  checkb "work-conservation oracle fires" true (o.Dst.Sim_dst.wc_violations > 0);
  (* static assignment still respects edges: ordering stays clean *)
  checki "no order violations" 0 o.Dst.Sim_dst.order_violations;
  (* and pinning must cost makespan against the work-conserving run *)
  let dyn = Dst.Sim_dst.run ~seed:1 ~n:96 ~workers:3 ~bug:Dst.Sim_dst.No_bug in
  checkb "pinning never beats stealing" true
    (o.Dst.Sim_dst.makespan >= dyn.Dst.Sim_dst.makespan)

let test_sim_catches_skip_edges () =
  let caught = ref 0 in
  for seed = 1 to 10 do
    let o = Dst.Sim_dst.run ~seed ~n:96 ~workers:3 ~bug:Dst.Sim_dst.Skip_edges in
    if o.Dst.Sim_dst.order_violations > 0 || o.Dst.Sim_dst.overlap_violations > 0 then incr caught
  done;
  (* dropped edges must be visible on (at least) the vast majority of seeds *)
  checkb "per-key oracles catch dropped edges" true (!caught >= 8)

(* ------------------------------------------------------------------ *)
(* Serial-equivalence oracle                                           *)
(* ------------------------------------------------------------------ *)

let rr digest results = { Dst.Cases.digest; results; invariant = None }

let test_oracle_equal_runs_pass () =
  checkb "identical runs pass" true
    (Dst.Oracle.compare_runs ~serial:(rr 1 [| 1; 2 |]) ~parallel:(rr 1 [| 1; 2 |]) = [])

let test_oracle_detects_divergence () =
  let has pred fs = List.exists pred fs in
  checkb "state mismatch" true
    (has
       (function Dst.Oracle.State_mismatch _ -> true | _ -> false)
       (Dst.Oracle.compare_runs ~serial:(rr 1 [||]) ~parallel:(rr 2 [||])));
  checkb "result mismatch with index" true
    (has
       (function Dst.Oracle.Result_mismatch { index = 1; _ } -> true | _ -> false)
       (Dst.Oracle.compare_runs ~serial:(rr 1 [| 5; 6 |]) ~parallel:(rr 1 [| 5; 7 |])));
  checkb "length mismatch" true
    (has
       (function Dst.Oracle.Result_length _ -> true | _ -> false)
       (Dst.Oracle.compare_runs ~serial:(rr 1 [| 5 |]) ~parallel:(rr 1 [||])));
  checkb "invariant failure surfaces" true
    (has
       (function Dst.Oracle.Invariant { run = "parallel"; _ } -> true | _ -> false)
       (Dst.Oracle.compare_runs ~serial:(rr 1 [||])
          ~parallel:{ Dst.Cases.digest = 1; results = [||]; invariant = Some "broke" }))

(* ------------------------------------------------------------------ *)
(* Cases: serial reference is stable; parallel unfuzzed matches serial *)
(* ------------------------------------------------------------------ *)

let test_cases_serial_stable () =
  List.iter
    (fun (c : Dst.Cases.t) ->
      let a = c.serial ~seed:3 ~n:40 and b = c.serial ~seed:3 ~n:40 in
      checkb (c.name ^ ": serial deterministic") true (a = b);
      let d = c.serial ~seed:4 ~n:40 in
      checkb (c.name ^ ": seed matters") true (a.Dst.Cases.digest <> d.Dst.Cases.digest))
    Dst.Cases.all

let test_cases_parallel_unfuzzed_equivalent () =
  List.iter
    (fun (c : Dst.Cases.t) ->
      let serial = c.serial ~seed:9 ~n:48 in
      let parallel, outcome =
        c.parallel ~seed:9 ~n:48 ~workers:2 ~queue_capacity:16 ~fuzz:None ~sanitize:false
      in
      checkb (c.name ^ ": no sanitizer outcome unless asked") true (outcome = None);
      match Dst.Oracle.compare_runs ~serial ~parallel with
      | [] -> ()
      | fs ->
        Alcotest.failf "%s: unfuzzed parallel diverged: %s" c.name
          (String.concat "; " (List.map Dst.Oracle.to_string fs)))
    Dst.Cases.all

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

let test_shrink_minimizes () =
  (* synthetic failure: needs >= 17 requests and the qfault class armed *)
  let calls = ref 0 in
  let fails ~n ~disabled =
    incr calls;
    n >= 17 && not (List.mem "qfault" disabled)
  in
  let r = Dst.Shrink.minimize ~case:"kv" ~seed:123 ~n:128 ~fails () in
  checkb "log halved to the threshold" true (r.Dst.Shrink.n = 32);
  checkb "needed class kept armed" true (not (List.mem "qfault" r.Dst.Shrink.disabled));
  List.iter
    (fun cls ->
      if cls <> "qfault" then
        checkb (cls ^ " proved unnecessary") true (List.mem cls r.Dst.Shrink.disabled))
    P.class_names;
  checkb "repro line is paste-ready" true
    (r.Dst.Shrink.command
    = "dune exec bin/dst.exe -- --replay 123 --case kv -n 32 --disable \
       rotate,stall,prefetch,straggler");
  checkb "budget respected" true (!calls <= 16)

let test_shrink_budget_caps_reruns () =
  let calls = ref 0 in
  let fails ~n:_ ~disabled:_ =
    incr calls;
    true
  in
  let r = Dst.Shrink.minimize ~case:"kv" ~seed:1 ~n:1024 ~fails ~budget:5 () in
  checki "exactly budget reruns" 5 !calls;
  checkb "still produces a repro" true (r.Dst.Shrink.n >= 1)

(* ------------------------------------------------------------------ *)
(* Runner: end-to-end fuzz loop, replay, self-test                     *)
(* ------------------------------------------------------------------ *)

let test_runner_seeds_pass () =
  let report = Dst.Runner.run ~shrink:false ~sanitize_every:3 ~seeds:6 ~first_seed:100 () in
  checkb "fuzzed seeds pass the oracle stack" true (Dst.Runner.ok report);
  checki "all seeds ran" 6 report.Dst.Runner.seeds

let test_runner_replay_deterministic () =
  let a = Dst.Runner.replay ~seed:57 () in
  let b = Dst.Runner.replay ~seed:57 () in
  checkb "replay reproduces the run" true
    (a.Dst.Runner.case = b.Dst.Runner.case
    && a.Dst.Runner.plan = b.Dst.Runner.plan
    && a.Dst.Runner.failures = b.Dst.Runner.failures
    && a.Dst.Runner.sim = b.Dst.Runner.sim);
  checkb "seed 57 is clean" true (Dst.Runner.seed_ok a);
  (* the knobs a shrunk repro passes: pinned case, log length, disabled
     classes — must replay without error *)
  let pinned = Dst.Runner.replay ~case:"ledger" ~n:32 ~disabled:[ "rotate"; "qfault" ] ~seed:57 () in
  checkb "pinned replay clean" true (Dst.Runner.seed_ok pinned);
  Alcotest.check Alcotest.string "case pinned" "ledger" pinned.Dst.Runner.case

let test_runner_self_test () =
  match Dst.Runner.self_test () with
  | Ok () -> ()
  | Error missed -> Alcotest.failf "oracle canaries escaped: %s" (String.concat "; " missed)

let test_runner_json_shape () =
  let report = Dst.Runner.run ~shrink:false ~sanitize_every:0 ~seeds:2 ~first_seed:1 () in
  let json = Dst.Runner.to_json report in
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  checkb "seed count serialised" true (contains json "\"seeds\":2");
  checkb "passed count serialised" true (contains json "\"passed\":2");
  checkb "failed list present" true (contains json "\"failed\":[")

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "doradd dst"
    [
      ( "decision",
        [
          quick "seeded streams deterministic" test_decision_determinism;
          quick "flip extremes" test_decision_flip_extremes;
          quick "flip rate" test_decision_flip_rate;
        ] );
      ( "plan",
        [
          quick "derivation and disabling" test_plan_derivation;
          quick "seeds explore the space" test_plans_vary_across_seeds;
        ] );
      ( "sim",
        [
          quick "deterministic and clean" test_sim_deterministic;
          quick "40 seeds clean" test_sim_seeds_all_clean;
          quick "catches static assignment" test_sim_catches_static_assignment;
          quick "catches dropped edges" test_sim_catches_skip_edges;
        ] );
      ( "oracle",
        [
          quick "equal runs pass" test_oracle_equal_runs_pass;
          quick "divergence detected" test_oracle_detects_divergence;
        ] );
      ( "cases",
        [
          slow "serial reference stable" test_cases_serial_stable;
          slow "unfuzzed parallel equivalent" test_cases_parallel_unfuzzed_equivalent;
        ] );
      ( "shrink",
        [
          quick "minimizes log and classes" test_shrink_minimizes;
          quick "budget caps reruns" test_shrink_budget_caps_reruns;
        ] );
      ( "runner",
        [
          slow "fuzzed seeds pass" test_runner_seeds_pass;
          slow "replay deterministic" test_runner_replay_deterministic;
          slow "self-test canaries" test_runner_self_test;
          quick "json report shape" test_runner_json_shape;
        ] );
    ]

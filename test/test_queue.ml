(* Unit, stress and property tests for the lock-free queue substrate.
   Multi-domain stress tests run even on a single-core host: OS preemption
   of the underlying threads still interleaves the domains. *)

open Doradd_queue

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ------------------------------------------------------------------ *)
(* Backoff                                                             *)
(* ------------------------------------------------------------------ *)

let test_backoff_progresses () =
  let b = Backoff.create ~min_wait:1 ~max_wait:8 () in
  (* must terminate quickly and not raise *)
  for _ = 1 to 20 do
    Backoff.once b
  done;
  Backoff.reset b;
  Backoff.once b

let test_backoff_validation () =
  Alcotest.check_raises "bad args" (Invalid_argument "Backoff.create") (fun () ->
      ignore (Backoff.create ~min_wait:4 ~max_wait:1 ()))

(* ------------------------------------------------------------------ *)
(* Spsc                                                                *)
(* ------------------------------------------------------------------ *)

let test_spsc_fifo () =
  let q = Spsc.create ~dummy:0 ~capacity:8 in
  for i = 1 to 8 do
    checkb "push fits" true (Spsc.try_push q i)
  done;
  checkb "full rejects" false (Spsc.try_push q 9);
  for i = 1 to 8 do
    Alcotest.check (Alcotest.option Alcotest.int) "fifo order" (Some i) (Spsc.try_pop q)
  done;
  Alcotest.check (Alcotest.option Alcotest.int) "empty" None (Spsc.try_pop q)

let test_spsc_capacity_rounding () =
  let q = Spsc.create ~dummy:0 ~capacity:5 in
  checki "rounded to 8" 8 (Spsc.capacity q)

let test_spsc_wraparound () =
  let q = Spsc.create ~dummy:0 ~capacity:4 in
  for round = 0 to 99 do
    for i = 0 to 2 do
      checkb "push" true (Spsc.try_push q ((round * 3) + i))
    done;
    for i = 0 to 2 do
      Alcotest.check (Alcotest.option Alcotest.int) "pop" (Some ((round * 3) + i)) (Spsc.try_pop q)
    done
  done

let test_spsc_length () =
  let q = Spsc.create ~dummy:0 ~capacity:8 in
  checki "empty" 0 (Spsc.length q);
  ignore (Spsc.try_push q 1);
  ignore (Spsc.try_push q 2);
  checki "two" 2 (Spsc.length q);
  ignore (Spsc.try_pop q);
  checki "one" 1 (Spsc.length q)

let test_spsc_out_cell () =
  let q = Spsc.create ~dummy:(-1) ~capacity:4 in
  let out = Spsc.make_out q in
  checkb "empty pop_into fails" false (Spsc.pop_into q out);
  ignore (Spsc.try_push q 7);
  checkb "pop_into succeeds" true (Spsc.pop_into q out);
  checki "out-cell holds the value" 7 out.Spsc.value;
  checkb "drained" false (Spsc.pop_into q out)

let test_spsc_push_batch () =
  let q = Spsc.create ~dummy:0 ~capacity:8 in
  checkb "whole batch fits" true (Spsc.push_batch q [| 1; 2; 3; 4; 5 |] ~len:5);
  (* all-or-nothing: 4 more don't fit into the 3 free slots *)
  checkb "oversized batch refused" false (Spsc.push_batch q [| 6; 7; 8; 9 |] ~len:4);
  checki "refused batch left the queue untouched" 5 (Spsc.length q);
  checkb "exact fit accepted" true (Spsc.push_batch q [| 6; 7; 8 |] ~len:3);
  for i = 1 to 8 do
    Alcotest.check (Alcotest.option Alcotest.int) "fifo across batches" (Some i) (Spsc.try_pop q)
  done;
  checkb "len may cover a prefix" true (Spsc.push_batch q [| 9; 99; 999 |] ~len:1);
  Alcotest.check (Alcotest.option Alcotest.int) "prefix only" (Some 9) (Spsc.try_pop q);
  Alcotest.check_raises "bad len" (Invalid_argument "Spsc.push_batch") (fun () ->
      ignore (Spsc.push_batch q [| 1 |] ~len:2))

let test_spsc_pop_batch_into () =
  let q = Spsc.create ~dummy:0 ~capacity:8 in
  let scratch = Array.make 3 0 in
  checki "empty drains nothing" 0 (Spsc.pop_batch_into q scratch);
  ignore (Spsc.push_batch q [| 1; 2; 3; 4; 5 |] ~len:5);
  checki "bounded by scratch" 3 (Spsc.pop_batch_into q scratch);
  checkb "fifo order" true (scratch = [| 1; 2; 3 |]);
  checki "bounded by backlog" 2 (Spsc.pop_batch_into q scratch);
  checki "then empty" 0 (Spsc.pop_batch_into q scratch);
  checkb "tail in order" true (scratch.(0) = 4 && scratch.(1) = 5)

let test_spsc_two_domain_transfer () =
  let n = 100_000 in
  let q = Spsc.create ~dummy:0 ~capacity:64 in
  let consumer =
    Domain.spawn (fun () ->
        let sum = ref 0 in
        let expected = ref 0 in
        let ok = ref true in
        for _ = 1 to n do
          let v = Spsc.pop q in
          if v <> !expected then ok := false;
          incr expected;
          sum := !sum + v
        done;
        (!ok, !sum))
  in
  for i = 0 to n - 1 do
    Spsc.push q i
  done;
  let ordered, sum = Domain.join consumer in
  checkb "order preserved across domains" true ordered;
  checki "sum preserved" (n * (n - 1) / 2) sum

(* ------------------------------------------------------------------ *)
(* Mpmc                                                                *)
(* ------------------------------------------------------------------ *)

let test_mpmc_fifo_single_thread () =
  let q = Mpmc.create ~dummy:0 ~capacity:16 in
  for i = 1 to 16 do
    checkb "push fits" true (Mpmc.try_push q i)
  done;
  checkb "full rejects" false (Mpmc.try_push q 17);
  for i = 1 to 16 do
    Alcotest.check (Alcotest.option Alcotest.int) "fifo" (Some i) (Mpmc.try_pop q)
  done;
  Alcotest.check (Alcotest.option Alcotest.int) "empty" None (Mpmc.try_pop q)

let test_mpmc_wraparound () =
  let q = Mpmc.create ~dummy:0 ~capacity:4 in
  for round = 0 to 999 do
    checkb "push" true (Mpmc.try_push q round);
    Alcotest.check (Alcotest.option Alcotest.int) "pop" (Some round) (Mpmc.try_pop q)
  done

let test_mpmc_interleaved_capacity () =
  let q = Mpmc.create ~dummy:0 ~capacity:4 in
  (* repeatedly go full->empty to exercise lap arithmetic *)
  for _ = 1 to 100 do
    for i = 0 to 3 do
      checkb "fill" true (Mpmc.try_push q i)
    done;
    checkb "full" false (Mpmc.try_push q 99);
    for _ = 0 to 3 do
      checkb "drain" true (Mpmc.try_pop q <> None)
    done;
    checkb "empty" true (Mpmc.try_pop q = None)
  done

let test_mpmc_multi_producer_multi_consumer () =
  let producers = 4 and consumers = 4 and per_producer = 25_000 in
  let total = producers * per_producer in
  let q = Mpmc.create ~dummy:0 ~capacity:256 in
  let consumed = Atomic.make 0 in
  let sum = Atomic.make 0 in
  let seen_flags = Array.init total (fun _ -> Atomic.make false) in
  let consumer_domains =
    Array.init consumers (fun _ ->
        Domain.spawn (fun () ->
            let b = Backoff.create () in
            let rec loop () =
              if Atomic.get consumed >= total then ()
              else
                match Mpmc.try_pop q with
                | Some v ->
                  Backoff.reset b;
                  if Atomic.exchange seen_flags.(v) true then failwith "duplicate delivery";
                  ignore (Atomic.fetch_and_add sum v);
                  ignore (Atomic.fetch_and_add consumed 1);
                  loop ()
                | None ->
                  Backoff.once b;
                  loop ()
            in
            loop ()))
  in
  let producer_domains =
    Array.init producers (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to per_producer - 1 do
              Mpmc.push q ((p * per_producer) + i)
            done))
  in
  Array.iter Domain.join producer_domains;
  Array.iter Domain.join consumer_domains;
  checki "all items delivered exactly once" total (Atomic.get consumed);
  checki "sum preserved" (total * (total - 1) / 2) (Atomic.get sum);
  Array.iteri
    (fun i f -> checkb (Printf.sprintf "item %d seen" i) true (Atomic.get f))
    seen_flags

let test_mpmc_per_producer_order () =
  (* FIFO per producer: a single consumer must see each producer's items in
     increasing order even with concurrent producers. *)
  let producers = 3 and per_producer = 20_000 in
  let q = Mpmc.create ~dummy:0 ~capacity:128 in
  let producer_domains =
    Array.init producers (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to per_producer - 1 do
              Mpmc.push q ((p * 1_000_000) + i)
            done))
  in
  let last = Array.make producers (-1) in
  let b = Backoff.create () in
  let remaining = ref (producers * per_producer) in
  let ok = ref true in
  while !remaining > 0 do
    match Mpmc.try_pop q with
    | Some v ->
      Backoff.reset b;
      let p = v / 1_000_000 and i = v mod 1_000_000 in
      if i <= last.(p) then ok := false;
      last.(p) <- i;
      decr remaining
    | None -> Backoff.once b
  done;
  Array.iter Domain.join producer_domains;
  checkb "per-producer FIFO" true !ok

let test_mpmc_out_cell () =
  let q = Mpmc.create ~dummy:(-1) ~capacity:4 in
  let out = Mpmc.make_out q in
  checkb "empty pop_into fails" false (Mpmc.pop_into q out);
  ignore (Mpmc.try_push q 42);
  checkb "pop_into succeeds" true (Mpmc.pop_into q out);
  checki "out-cell holds the value" 42 out.Mpmc.value;
  checkb "drained" false (Mpmc.pop_into q out)

(* ------------------------------------------------------------------ *)
(* Capacity validation (shared by all bounded queues)                  *)
(* ------------------------------------------------------------------ *)

let test_capacity_rejects_absurd () =
  let absurd = Capacity.max_capacity + 1 in
  Alcotest.check_raises "spsc zero" (Invalid_argument "Spsc.create: capacity must be positive")
    (fun () -> ignore (Spsc.create ~dummy:0 ~capacity:0));
  Alcotest.check_raises "spsc absurd" (Invalid_argument "Spsc.create: capacity exceeds 2^30")
    (fun () -> ignore (Spsc.create ~dummy:0 ~capacity:absurd));
  (* the old unguarded doubling loop spun forever here: above 2^61 no
     int-sized power of two can reach [n], and [p * 2] wraps negative *)
  Alcotest.check_raises "spsc 2^61+1" (Invalid_argument "Spsc.create: capacity exceeds 2^30")
    (fun () -> ignore (Spsc.create ~dummy:0 ~capacity:((1 lsl 61) + 1)));
  Alcotest.check_raises "mpmc negative" (Invalid_argument "Mpmc.create: capacity must be positive")
    (fun () -> ignore (Mpmc.create ~dummy:0 ~capacity:(-3)));
  Alcotest.check_raises "mpmc absurd" (Invalid_argument "Mpmc.create: capacity exceeds 2^30")
    (fun () -> ignore (Mpmc.create ~dummy:0 ~capacity:max_int));
  Alcotest.check_raises "ring absurd" (Invalid_argument "Ring.create: capacity exceeds 2^30")
    (fun () -> ignore (Ring.create ~capacity:((1 lsl 40) + 7) Fun.id))

(* qcheck: for any sane requested capacity the queue provides at least
   that many slots (rounding up to a power of two, never down). *)
let prop_capacity_at_least_requested =
  QCheck.Test.make ~name:"create ~capacity:n yields capacity >= n" ~count:500
    QCheck.(int_range 1 100_000)
    (fun n ->
      Spsc.capacity (Spsc.create ~dummy:0 ~capacity:n) >= n
      && Mpmc.capacity (Mpmc.create ~dummy:0 ~capacity:n) >= n
      && Ring.capacity (Ring.create ~capacity:n Fun.id) >= n)

(* qcheck: any single-threaded sequence of pushes and pops behaves like a
   functional FIFO of the same capacity. *)
let prop_mpmc_model =
  QCheck.Test.make ~name:"mpmc matches FIFO model (sequential)" ~count:300
    QCheck.(list (pair bool (int_range 0 1000)))
    (fun ops ->
      let cap = 8 in
      let q = Mpmc.create ~dummy:0 ~capacity:cap in
      let model = Queue.create () in
      List.for_all
        (fun (is_push, v) ->
          if is_push then begin
            let did = Mpmc.try_push q v in
            let should = Queue.length model < cap in
            if should then Queue.push v model;
            did = should
          end
          else begin
            let got = Mpmc.try_pop q in
            let want = if Queue.is_empty model then None else Some (Queue.pop model) in
            got = want
          end)
        ops)

let prop_spsc_model =
  QCheck.Test.make ~name:"spsc matches FIFO model (sequential)" ~count:300
    QCheck.(list (pair bool (int_range 0 1000)))
    (fun ops ->
      let cap = 8 in
      let q = Spsc.create ~dummy:0 ~capacity:cap in
      let model = Queue.create () in
      List.for_all
        (fun (is_push, v) ->
          if is_push then begin
            let did = Spsc.try_push q v in
            let should = Queue.length model < cap in
            if should then Queue.push v model;
            did = should
          end
          else begin
            let got = Spsc.try_pop q in
            let want = if Queue.is_empty model then None else Some (Queue.pop model) in
            got = want
          end)
        ops)

(* ------------------------------------------------------------------ *)
(* Ring                                                                *)
(* ------------------------------------------------------------------ *)

let test_ring_wrapping () =
  let r = Ring.create ~capacity:8 (fun i -> ref i) in
  checki "capacity" 8 (Ring.capacity r);
  checkb "seq wraps to same slot" true (Ring.get r 3 == Ring.get r 11);
  checkb "distinct slots differ" true (Ring.get r 3 != Ring.get r 4)

let test_ring_min_capacity () =
  let c = Ring.min_capacity ~stages:4 ~queue_depth:4 ~max_batch:8 in
  checki "4*4*8+8" 136 c

let test_ring_init () =
  let r = Ring.create ~capacity:4 (fun i -> i * 10) in
  checki "slot 2" 20 (Ring.get r 2)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "queue"
    [
      ( "backoff",
        [ tc "progresses" `Quick test_backoff_progresses; tc "validation" `Quick test_backoff_validation ] );
      ( "spsc",
        [
          tc "fifo" `Quick test_spsc_fifo;
          tc "capacity rounding" `Quick test_spsc_capacity_rounding;
          tc "wraparound" `Quick test_spsc_wraparound;
          tc "length" `Quick test_spsc_length;
          tc "out-cell pop" `Quick test_spsc_out_cell;
          tc "push_batch" `Quick test_spsc_push_batch;
          tc "pop_batch_into" `Quick test_spsc_pop_batch_into;
          tc "two-domain transfer" `Slow test_spsc_two_domain_transfer;
          QCheck_alcotest.to_alcotest prop_spsc_model;
        ] );
      ( "mpmc",
        [
          tc "fifo single thread" `Quick test_mpmc_fifo_single_thread;
          tc "wraparound" `Quick test_mpmc_wraparound;
          tc "interleaved capacity" `Quick test_mpmc_interleaved_capacity;
          tc "multi-producer multi-consumer" `Slow test_mpmc_multi_producer_multi_consumer;
          tc "per-producer order" `Slow test_mpmc_per_producer_order;
          tc "out-cell pop" `Quick test_mpmc_out_cell;
          QCheck_alcotest.to_alcotest prop_mpmc_model;
        ] );
      ( "capacity",
        [
          tc "rejects absurd capacities" `Quick test_capacity_rejects_absurd;
          QCheck_alcotest.to_alcotest prop_capacity_at_least_requested;
        ] );
      ( "ring",
        [
          tc "wrapping" `Quick test_ring_wrapping;
          tc "min capacity" `Quick test_ring_min_capacity;
          tc "init" `Quick test_ring_init;
        ] );
    ]

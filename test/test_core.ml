(* Tests for the DORADD core: nodes, slots, footprints, spawner DAG
   construction, the runnable set, the runtime, and the pipelined
   dispatcher.  The determinism properties at the end are the central
   correctness claim of the paper: parallel replay of a log produces the
   same state as serial execution, for any worker count. *)

open Doradd_core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let nop () = ()

(* ------------------------------------------------------------------ *)
(* Node protocol                                                       *)
(* ------------------------------------------------------------------ *)

let test_node_guard () =
  let n = Node.create ~seqno:0 nop in
  checki "join starts at 1" 1 (Node.pending n);
  checkb "release makes ready" true (Node.release n)

let test_node_dependency_flow () =
  let a = Node.create ~seqno:0 nop in
  let b = Node.create ~seqno:1 nop in
  Node.incr_join b;
  checkb "registered on active pred" true (Node.add_dependent a b);
  checkb "b not ready while a pending" false (Node.release b);
  checkb "a ready" true (Node.release a);
  let ready = ref [] in
  ignore (Node.run a);
  Node.complete a ~on_ready:(fun d -> ready := d :: !ready);
  checki "b became ready" 1 (List.length !ready);
  checkb "it is b" true (List.hd !ready == b)

let test_node_register_after_done () =
  let a = Node.create ~seqno:0 nop in
  ignore (Node.release a);
  Node.complete a ~on_ready:(fun _ -> ());
  let b = Node.create ~seqno:1 nop in
  checkb "registration refused on done pred" false (Node.add_dependent a b);
  checkb "done" true (Node.is_done a)

let test_node_multiple_dependents_ready_order () =
  (* dependents must be resolved oldest-first *)
  let a = Node.create ~seqno:0 nop in
  let deps = List.init 5 (fun i -> Node.create ~seqno:(i + 1) nop) in
  List.iter
    (fun d ->
      Node.incr_join d;
      ignore (Node.add_dependent a d);
      ignore (Node.release d))
    deps;
  ignore (Node.release a);
  let order = ref [] in
  Node.complete a ~on_ready:(fun d -> order := Node.seqno d :: !order);
  Alcotest.check (Alcotest.list Alcotest.int) "log order" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_node_pool_recycles () =
  (* steady state must reuse the same node object: acquire → complete →
     recycle → acquire hands back the identical record, reinitialised *)
  let pool = Node.create_pool ~nodes:1 ~cells:4 in
  let n1 = Node.acquire pool ~seqno:0 nop in
  let g1 = Node.generation n1 in
  ignore (Node.release n1);
  ignore (Node.run n1);
  Node.complete n1 ~on_ready:(fun _ -> ());
  Node.recycle n1;
  let n2 = Node.acquire pool ~seqno:7 nop in
  checkb "pool reuses the node object" true (n2 == n1);
  checki "seqno reset" 7 (Node.seqno n2);
  checkb "generation bumped" true (Node.generation n2 > g1);
  checki "join reset to 1" 1 (Node.pending n2);
  checkb "not done after reinit" false (Node.is_done n2)

let test_node_pool_stale_slot_reference () =
  (* Slots snapshot (node, generation); once the node is recycled and
     reincarnated for a later request, the spawner must treat the stale
     snapshot as already complete — otherwise the new request would be
     wired behind its own node and deadlock. *)
  let pool = Node.create_pool ~nodes:1 ~cells:4 in
  let cell = Resource.create 0 in
  let fp = Footprint.of_slots [ Resource.slot cell ] in
  let ready = ref 0 in
  let sink _ = incr ready in
  let a = Node.acquire pool ~seqno:0 nop in
  Spawner.schedule_ready sink a fp;
  checki "head of chain ready" 1 !ready;
  ignore (Node.run a);
  Node.complete a ~on_ready:(fun _ -> ());
  Node.recycle a;
  let b = Node.acquire pool ~seqno:1 nop in
  checkb "same object reincarnated" true (b == a);
  Spawner.schedule_ready sink b fp;
  checki "stale writer snapshot ignored: b immediately ready" 2 !ready

let test_node_double_complete_rejected () =
  let a = Node.create ~seqno:0 nop in
  ignore (Node.release a);
  Node.complete a ~on_ready:(fun _ -> ());
  Alcotest.check_raises "second complete raises"
    (Invalid_argument "Node.complete: already completed") (fun () ->
      Node.complete a ~on_ready:(fun _ -> ()))

let test_node_diamond () =
  (* a -> b, a -> c, b -> d, c -> d : d becomes ready only after both. *)
  let a = Node.create ~seqno:0 nop in
  let b = Node.create ~seqno:1 nop in
  let c = Node.create ~seqno:2 nop in
  let d = Node.create ~seqno:3 nop in
  let dep pred succ =
    Node.incr_join succ;
    ignore (Node.add_dependent pred succ)
  in
  dep a b;
  dep a c;
  dep b d;
  dep c d;
  List.iter (fun n -> ignore (Node.release n)) [ b; c; d ];
  ignore (Node.release a);
  let ready = ref [] in
  let on_ready n = ready := n :: !ready in
  Node.complete a ~on_ready;
  checki "b and c ready" 2 (List.length !ready);
  Node.complete b ~on_ready;
  checki "d still blocked by c" 2 (List.length !ready);
  Node.complete c ~on_ready;
  checki "d ready after both" 3 (List.length !ready)

(* ------------------------------------------------------------------ *)
(* Footprint                                                           *)
(* ------------------------------------------------------------------ *)

let test_footprint_dedup () =
  let s = Slot.create () in
  let fp = Footprint.of_list [ (s, Footprint.Write); (s, Footprint.Write) ] in
  checki "duplicates collapse" 1 (Footprint.length fp)

let test_footprint_write_dominates () =
  let s = Slot.create () in
  let fp = Footprint.of_list [ (s, Footprint.Read); (s, Footprint.Write) ] in
  checki "collapsed" 1 (Footprint.length fp);
  Footprint.iter fp (fun _ m -> checkb "write wins" true (m = Footprint.Write));
  let fp2 = Footprint.of_list [ (s, Footprint.Write); (s, Footprint.Read) ] in
  Footprint.iter fp2 (fun _ m -> checkb "write wins either order" true (m = Footprint.Write))

let test_footprint_sorted_by_id () =
  let a = Slot.create () and b = Slot.create () and c = Slot.create () in
  let fp = Footprint.of_slots [ c; a; b ] in
  let ids = ref [] in
  Footprint.iter fp (fun s _ -> ids := Slot.id s :: !ids);
  let ids = List.rev !ids in
  checkb "sorted ascending" true (List.sort compare ids = ids);
  checki "all kept" 3 (Footprint.length fp)

let test_footprint_empty () =
  checki "empty" 0 (Footprint.length Footprint.empty);
  let s = Slot.create () in
  checkb "mem on empty" false (Footprint.mem Footprint.empty s)

let test_footprint_mem () =
  let a = Slot.create () and b = Slot.create () in
  let fp = Footprint.of_slots [ a ] in
  checkb "a present" true (Footprint.mem fp a);
  checkb "b absent" false (Footprint.mem fp b)

let prop_footprint_normal_form =
  QCheck.Test.make ~name:"footprint: sorted, unique, write-dominant" ~count:200
    QCheck.(list (pair (int_range 0 10) bool))
    (fun spec ->
      let slots = Array.init 11 (fun _ -> Slot.create ()) in
      let fp =
        Footprint.of_list
          (List.map
             (fun (i, w) -> (slots.(i), if w then Footprint.Write else Footprint.Read))
             spec)
      in
      let seen = Hashtbl.create 16 in
      let ok = ref true in
      let last_id = ref (-1) in
      Footprint.iter fp (fun s m ->
          if Slot.id s <= !last_id then ok := false;
          last_id := Slot.id s;
          if Hashtbl.mem seen (Slot.id s) then ok := false;
          Hashtbl.add seen (Slot.id s) ();
          (* if any spec entry for this slot was a write, mode must be Write *)
          let any_write =
            List.exists (fun (i, w) -> w && slots.(i) == s) spec
          in
          if any_write && m <> Footprint.Write then ok := false);
      let distinct =
        List.sort_uniq compare (List.map fst spec) |> List.length
      in
      !ok && Footprint.length fp = distinct)

(* ------------------------------------------------------------------ *)
(* Spawner: DAG construction                                           *)
(* ------------------------------------------------------------------ *)

(* Schedule a list of footprints through the spawner and return, for each
   request, the set of requests that had completed before it ran — by
   running readiness by hand. *)
let build_dag footprints =
  let ready = Queue.create () in
  let nodes =
    List.mapi (fun i fp -> (Node.create ~seqno:i nop, fp)) footprints
  in
  List.iter (fun (n, fp) -> Spawner.schedule_ready (fun n -> Queue.push n ready) n fp) nodes;
  (List.map fst nodes, ready)

let drain_in_waves nodes ready =
  (* returns the wave number each node executed in *)
  let wave = Array.make (List.length nodes) (-1) in
  let w = ref 0 in
  while not (Queue.is_empty ready) do
    let this_wave = Queue.fold (fun acc n -> n :: acc) [] ready in
    Queue.clear ready;
    List.iter (fun n -> wave.(Node.seqno n) <- !w) this_wave;
    List.iter (fun n -> Node.complete n ~on_ready:(fun d -> Queue.push d ready)) this_wave;
    incr w
  done;
  wave

let test_spawner_figure4 () =
  (* The paper's Figure 4: requests over accounts a1..a4.
     Req1: transfer(a1,a2)  Req2: balance(a2)... — we reproduce the DAG
     shape given in the figure: Req1{a1,a2} Req2{a1? ...}.
     Figure 4's stated dependencies: Req3 waits on Req1 and Req2 (overlap
     on a1 and a2); Req4 waits on Req3 (a2); Req5 independent (a4).
     Encode: Req1{a1}, Req2{a2}, Req3{a1,a2}, Req4{a2? -> must overlap
     Req3 only}, Req5{a4}. *)
  let a1 = Slot.create () and a2 = Slot.create () and a4 = Slot.create () in
  let fps =
    [
      Footprint.of_slots [ a1 ];
      Footprint.of_slots [ a2 ];
      Footprint.of_slots [ a1; a2 ];
      Footprint.of_slots [ a2 ];
      Footprint.of_slots [ a4 ];
    ]
  in
  let nodes, ready = build_dag fps in
  (* Req1, Req2, Req5 immediately runnable *)
  checki "three ready" 3 (Queue.length ready);
  let wave = drain_in_waves nodes ready in
  checki "req1 wave 0" 0 wave.(0);
  checki "req2 wave 0" 0 wave.(1);
  checki "req5 wave 0" 0 wave.(4);
  checki "req3 wave 1" 1 wave.(2);
  checki "req4 wave 2" 2 wave.(3)

let test_spawner_chain () =
  let s = Slot.create () in
  let fps = List.init 10 (fun _ -> Footprint.of_slots [ s ]) in
  let nodes, ready = build_dag fps in
  checki "only head ready" 1 (Queue.length ready);
  let wave = drain_in_waves nodes ready in
  List.iteri (fun i _ -> checki (Printf.sprintf "req %d serialized" i) i wave.(i)) fps

let test_spawner_independent () =
  let fps = List.init 8 (fun _ -> Footprint.of_slots [ Slot.create () ]) in
  let _, ready = build_dag fps in
  checki "all ready at once" 8 (Queue.length ready)

let test_spawner_empty_footprint () =
  let _, ready = build_dag [ Footprint.empty; Footprint.empty ] in
  checki "empty footprints always ready" 2 (Queue.length ready)

let test_spawner_self_duplicate () =
  (* transfer a a: must not deadlock on itself *)
  let a = Slot.create () in
  let fp = Footprint.of_list [ (a, Footprint.Write); (a, Footprint.Write) ] in
  let _, ready = build_dag [ fp ] in
  checki "runnable" 1 (Queue.length ready)

let test_spawner_readers_share () =
  let s = Slot.create () in
  let w = Footprint.of_list [ (s, Footprint.Write) ] in
  let r = Footprint.of_list [ (s, Footprint.Read) ] in
  let nodes, ready = build_dag [ w; r; r; r; w ] in
  let wave = drain_in_waves nodes ready in
  checki "writer first" 0 wave.(0);
  checki "readers share wave 1" 1 wave.(1);
  checki "readers share wave 1" 1 wave.(2);
  checki "readers share wave 1" 1 wave.(3);
  checki "second writer after readers" 2 wave.(4)

let test_spawner_all_write_serializes_reads () =
  (* paper semantics: reads treated as writes serialize *)
  let s = Slot.create () in
  let w = Footprint.of_slots [ s ] in
  let nodes, ready = build_dag [ w; w; w ] in
  let wave = drain_in_waves nodes ready in
  checki "serial" 0 wave.(0);
  checki "serial" 1 wave.(1);
  checki "serial" 2 wave.(2)

let test_spawner_writer_waits_all_readers () =
  (* readers at different times; writer must wait for all of them *)
  let s = Slot.create () and t = Slot.create () in
  let fps =
    [
      Footprint.of_list [ (s, Footprint.Read) ];
      (* reader 1: also serialised behind a chain on t so it finishes late *)
      Footprint.of_list [ (t, Footprint.Write) ];
      Footprint.of_list [ (t, Footprint.Write); (s, Footprint.Read) ];
      Footprint.of_list [ (s, Footprint.Write) ];
    ]
  in
  let nodes, ready = build_dag fps in
  let wave = drain_in_waves nodes ready in
  checkb "writer after slow reader" true (wave.(3) > wave.(2));
  checkb "writer after fast reader" true (wave.(3) > wave.(0))

(* ------------------------------------------------------------------ *)
(* Runnable set                                                        *)
(* ------------------------------------------------------------------ *)

let mk_node i = Node.create ~seqno:i nop

let test_runnable_set_round_robin () =
  let rs = Runnable_set.create ~workers:3 ~queue_capacity:8 in
  for i = 0 to 5 do
    Runnable_set.push_dispatcher rs (mk_node i)
  done;
  checki "size" 6 (Runnable_set.size rs);
  (* worker 0 should find seqno 0 in its own queue (round robin started at 0) *)
  (match Runnable_set.pop rs ~worker:0 with
  | Some n -> checki "own queue first" 0 (Node.seqno n)
  | None -> Alcotest.fail "expected node");
  (* draining everything works from any worker via stealing *)
  let count = ref 0 in
  let rec drain () =
    match Runnable_set.pop rs ~worker:1 with
    | Some _ ->
      incr count;
      drain ()
    | None -> ()
  in
  drain ();
  checki "rest drained by stealing" 5 !count

let test_runnable_set_worker_own_queue () =
  let rs = Runnable_set.create ~workers:2 ~queue_capacity:8 in
  Runnable_set.push_worker rs ~worker:1 (mk_node 42);
  (match Runnable_set.pop rs ~worker:1 with
  | Some n -> checki "pops own push" 42 (Node.seqno n)
  | None -> Alcotest.fail "expected node");
  checkb "now empty" true (Runnable_set.pop rs ~worker:0 = None)

let test_runnable_set_steal () =
  let rs = Runnable_set.create ~workers:4 ~queue_capacity:8 in
  Runnable_set.push_worker rs ~worker:3 (mk_node 7);
  (match Runnable_set.pop rs ~worker:0 with
  | Some n -> checki "stolen" 7 (Node.seqno n)
  | None -> Alcotest.fail "steal failed")

let test_runnable_set_overflow_runs_inline () =
  (* every queue full: push_worker must execute the node inline rather
     than deadlock *)
  let rs = Runnable_set.create ~workers:1 ~queue_capacity:2 in
  Runnable_set.push_worker rs ~worker:0 (mk_node 0);
  Runnable_set.push_worker rs ~worker:0 (mk_node 1);
  let executed = ref false in
  let n = Node.create ~seqno:2 (fun () -> executed := true) in
  ignore (Node.release n);
  Runnable_set.push_worker rs ~worker:0 n;
  checkb "ran inline when full" true !executed

(* ------------------------------------------------------------------ *)
(* Runtime: parallel determinism                                       *)
(* ------------------------------------------------------------------ *)

(* Non-commutative per-resource mutation: final value depends on the order
   of all ops applied to that resource, so any determinism violation is
   visible in the final state. *)
let apply_op v req_id = (v * 31) + req_id + 1

let run_parallel ~workers ~n_resources log =
  let cells = Array.init n_resources (fun _ -> Resource.create 0) in
  Runtime.run_log ~workers
    (fun (_id, keys) -> Footprint.of_slots (List.map (fun k -> Resource.slot cells.(k)) keys))
    (fun (id, keys) ->
      List.iter (fun k -> Resource.update cells.(k) (fun v -> apply_op v id)) keys)
    log;
  Array.map Resource.get cells

let run_serial ~n_resources log =
  let cells = Array.make n_resources 0 in
  Array.iter (fun (id, keys) -> List.iter (fun k -> cells.(k) <- apply_op cells.(k) id) keys) log;
  cells

let make_log ~seed ~n ~n_resources ~keys_per_req =
  let r = Random.State.make [| seed |] in
  Array.init n (fun i ->
      let keys =
        List.init (1 + Random.State.int r keys_per_req) (fun _ -> Random.State.int r n_resources)
      in
      (i, keys))

let test_runtime_matches_serial workers () =
  let n_resources = 40 in
  let log = make_log ~seed:7 ~n:5_000 ~n_resources ~keys_per_req:4 in
  let expected = run_serial ~n_resources log in
  let got = run_parallel ~workers ~n_resources log in
  Alcotest.check (Alcotest.array Alcotest.int) "parallel = serial" expected got

let test_runtime_contended_single_key () =
  (* worst case: every request touches the same resource *)
  let n_resources = 1 in
  let log = Array.init 2_000 (fun i -> (i, [ 0 ])) in
  let expected = run_serial ~n_resources log in
  let got = run_parallel ~workers:4 ~n_resources log in
  Alcotest.check (Alcotest.array Alcotest.int) "fully serialised" expected got

let test_runtime_counters () =
  let t = Runtime.create ~workers:2 () in
  let r = Resource.create 0 in
  for _ = 1 to 100 do
    Runtime.schedule t (Footprint.of_slots [ Resource.slot r ]) (fun () -> Resource.update r succ)
  done;
  checki "scheduled" 100 (Runtime.scheduled t);
  Runtime.drain t;
  checki "completed" 100 (Runtime.completed t);
  checki "state" 100 (Resource.get r);
  Runtime.shutdown t

let test_runtime_empty_shutdown () =
  let t = Runtime.create ~workers:2 () in
  Runtime.shutdown t

let test_runtime_workers_validation () =
  Alcotest.check_raises "zero workers" (Invalid_argument "Runtime.create: workers must be positive")
    (fun () -> ignore (Runtime.create ~workers:0 ()))

let test_runtime_bank_invariant () =
  (* transfers conserve total balance and match serial replay *)
  let n_accounts = 16 in
  let r = Random.State.make [| 123 |] in
  let log =
    Array.init 4_000 (fun i ->
        let src = Random.State.int r n_accounts in
        let dst = Random.State.int r n_accounts in
        let amt = Random.State.int r 100 in
        (i, src, dst, amt))
  in
  let accounts = Array.init n_accounts (fun _ -> Resource.create 1_000) in
  Runtime.run_log ~workers:4
    (fun (_, src, dst, _) ->
      Footprint.of_slots [ Resource.slot accounts.(src); Resource.slot accounts.(dst) ])
    (fun (_, src, dst, amt) ->
      Resource.update accounts.(src) (fun v -> v - amt);
      Resource.update accounts.(dst) (fun v -> v + amt))
    log;
  let total = Array.fold_left (fun acc a -> acc + Resource.get a) 0 accounts in
  checki "balance conserved" (n_accounts * 1_000) total;
  (* serial replay for exact per-account equality *)
  let serial = Array.make n_accounts 1_000 in
  Array.iter
    (fun (_, src, dst, amt) ->
      serial.(src) <- serial.(src) - amt;
      serial.(dst) <- serial.(dst) + amt)
    log;
  Array.iteri
    (fun i a -> checki (Printf.sprintf "account %d" i) serial.(i) (Resource.get a))
    accounts

let test_runtime_read_mode_snapshots () =
  (* Readers must observe exactly the value left by the preceding writer in
     log order. *)
  let cell = Resource.create 0 in
  let n_rounds = 200 and readers_per_round = 3 in
  let snapshots = Array.make (n_rounds * readers_per_round) (-1) in
  let t = Runtime.create ~workers:4 () in
  for round = 0 to n_rounds - 1 do
    Runtime.schedule t
      (Footprint.of_list [ Resource.write cell ])
      (fun () -> Resource.set cell (round + 1));
    for rd = 0 to readers_per_round - 1 do
      let idx = (round * readers_per_round) + rd in
      Runtime.schedule t
        (Footprint.of_list [ Resource.read cell ])
        (fun () -> snapshots.(idx) <- Resource.get cell)
    done
  done;
  Runtime.shutdown t;
  Array.iteri
    (fun idx v -> checki (Printf.sprintf "snapshot %d" idx) ((idx / readers_per_round) + 1) v)
    snapshots

exception Boom of int

let test_runtime_failure_injection () =
  (* raising procedures must not wedge the runtime: dependents still run,
     failures are recorded in log order *)
  let t = Runtime.create ~workers:3 () in
  let r = Resource.create 0 in
  let fp = Footprint.of_slots [ Resource.slot r ] in
  for i = 0 to 99 do
    if i mod 10 = 3 then Runtime.schedule t fp (fun () -> raise (Boom i))
    else Runtime.schedule t fp (fun () -> Resource.update r succ)
  done;
  Runtime.drain t;
  checki "all requests completed" 100 (Runtime.completed t);
  checki "non-failing ops applied" 90 (Resource.get r);
  let fs = Runtime.failures t in
  checki "ten failures" 10 (List.length fs);
  List.iteri
    (fun idx (seqno, e) ->
      checki "failure position" ((idx * 10) + 3) seqno;
      checkb "right exception" true (e = Boom seqno))
    fs;
  Runtime.shutdown t

let test_runtime_failure_in_yield_step () =
  let t = Runtime.create ~workers:2 () in
  let r = Resource.create 0 in
  let fp = Footprint.of_slots [ Resource.slot r ] in
  Runtime.schedule_steps t fp (fun () ->
      Resource.update r succ;
      Node.Yield (fun () -> raise (Boom 0)));
  let after = ref (-1) in
  Runtime.schedule t fp (fun () -> after := Resource.get r);
  Runtime.shutdown t;
  checki "dependent ran after failed step" 1 !after;
  checki "failure recorded" 1 (List.length (Runtime.failures t))

let test_runtime_overflow_inline_path () =
  (* tiny queues force the inline-execution overflow path: everything
     must still complete and count *)
  let t = Runtime.create ~workers:2 ~queue_capacity:2 () in
  let cells = Array.init 4 (fun _ -> Resource.create 0) in
  let n = 2_000 in
  for i = 0 to n - 1 do
    let c = cells.(i mod 4) in
    Runtime.schedule t
      (Footprint.of_slots [ Resource.slot c ])
      (fun () -> Resource.update c succ)
  done;
  Runtime.drain t;
  checki "all completed despite overflow" n (Runtime.completed t);
  checki "all applied" n (Array.fold_left (fun a c -> a + Resource.get c) 0 cells);
  Runtime.shutdown t

let test_runtime_deep_chain_small_queues () =
  (* A 10k-deep pure dependency chain through one cell, with the smallest
     legal queues: every completion re-pushes into a full queue, so the
     whole chain flows through the overflow worklist.  The old mutually
     recursive inline path consumed a stack frame per chain link and
     overflowed here. *)
  let n = 10_000 in
  let cell = Resource.create 0 in
  let fp _ = Footprint.of_slots [ Resource.slot cell ] in
  let exec id = Resource.update cell (fun v -> (v * 31) + id + 1) in
  Runtime.run_log ~workers:2 ~queue_capacity:2 fp exec (Array.init n Fun.id);
  let expected = ref 0 in
  for id = 0 to n - 1 do
    expected := (!expected * 31) + id + 1
  done;
  checki "matches the serial fold" !expected (Resource.peek cell)

(* qcheck: spawner ordering — for any random all-write log, a request
   never becomes runnable before every earlier conflicting request has
   completed (checked via the wave schedule) *)
let prop_spawner_respects_conflicts =
  QCheck.Test.make ~name:"spawner: conflicting requests execute in log order" ~count:100
    QCheck.(pair (int_range 1 1_000_000) (int_range 1 6))
    (fun (seed, n_slots) ->
      let r = Random.State.make [| seed |] in
      let slots = Array.init n_slots (fun _ -> Slot.create ()) in
      let fps =
        List.init 40 (fun _ ->
            let k = 1 + Random.State.int r 3 in
            Footprint.of_slots
              (List.init k (fun _ -> slots.(Random.State.int r n_slots))))
      in
      let nodes, ready = build_dag fps in
      let wave = drain_in_waves nodes ready in
      let arr = Array.of_list fps in
      let ok = ref true in
      for i = 0 to Array.length arr - 1 do
        for j = i + 1 to Array.length arr - 1 do
          let conflict = ref false in
          Footprint.iter arr.(i) (fun s _ -> if Footprint.mem arr.(j) s then conflict := true);
          if !conflict && wave.(j) <= wave.(i) then ok := false
        done
      done;
      !ok)

(* qcheck determinism property over random logs and worker counts *)
let prop_runtime_deterministic =
  QCheck.Test.make ~name:"parallel replay = serial replay" ~count:25
    QCheck.(triple (int_range 1 4) (int_range 1 1_000_000) (int_range 1 12))
    (fun (workers, seed, n_resources) ->
      let log = make_log ~seed ~n:800 ~n_resources ~keys_per_req:3 in
      let expected = run_serial ~n_resources log in
      let got = run_parallel ~workers ~n_resources log in
      expected = got)

(* two parallel runs with different worker counts agree with each other *)
let prop_runtime_worker_count_invariant =
  QCheck.Test.make ~name:"outcome independent of worker count" ~count:10
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let log = make_log ~seed ~n:600 ~n_resources:8 ~keys_per_req:3 in
      let a = run_parallel ~workers:1 ~n_resources:8 log in
      let b = run_parallel ~workers:3 ~n_resources:8 log in
      a = b)

(* ------------------------------------------------------------------ *)
(* Pipeline                                                            *)
(* ------------------------------------------------------------------ *)

(* A small keyed-counter service: inputs are (req_id, key list); the
   indexer resolves keys against a table of resources. *)
type pipe_entry = {
  mutable req_id : int;
  mutable keys : int list;
  mutable resolved : int Resource.t list;
}

(* like pipe_service but the work adds the request id (commutative) *)
let pipe_service_add cells applied =
  {
    Service.entry_create = (fun _ -> { req_id = -1; keys = []; resolved = [] });
    dummy_input = (-1, []);
    inject =
      (fun e (id, keys) ->
        e.req_id <- id;
        e.keys <- keys;
        e.resolved <- []);
    index = (fun e -> e.resolved <- List.map (fun k -> cells.(k)) e.keys);
    prefetch = (fun e -> List.iter Service.touch e.resolved);
    footprint = (fun e -> Footprint.of_slots (List.map Resource.slot e.resolved));
    work =
      (fun e ->
        let id = e.req_id and resolved = e.resolved in
        fun () ->
          List.iter (fun r -> Resource.update r (fun v -> v + id)) resolved;
          Atomic.incr applied);
  }

let pipe_service cells applied =
  {
    Service.entry_create = (fun _ -> { req_id = -1; keys = []; resolved = [] });
    dummy_input = (-1, []);
    inject =
      (fun e (id, keys) ->
        e.req_id <- id;
        e.keys <- keys;
        e.resolved <- []);
    index = (fun e -> e.resolved <- List.map (fun k -> cells.(k)) e.keys);
    prefetch = (fun e -> List.iter Service.touch e.resolved);
    footprint = (fun e -> Footprint.of_slots (List.map Resource.slot e.resolved));
    work =
      (fun e ->
        (* capture: the entry is recycled after spawn *)
        let id = e.req_id and resolved = e.resolved in
        fun () ->
          List.iter (fun r -> Resource.update r (fun v -> apply_op v id)) resolved;
          Atomic.incr applied);
  }

let run_pipeline_variant stages () =
  let n_resources = 20 in
  let log = make_log ~seed:11 ~n:3_000 ~n_resources ~keys_per_req:3 in
  let cells = Array.init n_resources (fun _ -> Resource.create 0) in
  let applied = Atomic.make 0 in
  let runtime = Runtime.create ~workers:2 () in
  let pipe = Pipeline.start ~stages ~runtime (pipe_service cells applied) in
  Array.iter (fun req -> Pipeline.submit pipe req) log;
  Pipeline.flush_and_stop pipe;
  checki "all spawned" (Array.length log) (Pipeline.spawned pipe);
  Runtime.shutdown runtime;
  checki "all applied" (Array.length log) (Atomic.get applied);
  let expected = run_serial ~n_resources log in
  Alcotest.check (Alcotest.array Alcotest.int) "pipeline = serial" expected
    (Array.map Resource.get cells)

let test_pipeline_bursty_input () =
  (* adaptive batching: partial batches must flow through promptly when
     the input goes quiet between bursts *)
  let n_resources = 8 in
  let cells = Array.init n_resources (fun _ -> Resource.create 0) in
  let applied = Atomic.make 0 in
  let runtime = Runtime.create ~workers:2 () in
  let pipe = Pipeline.start ~stages:Pipeline.Three_core ~runtime (pipe_service cells applied) in
  for burst = 0 to 19 do
    (* bursts of 1..5 requests, smaller than the max batch of 8 *)
    for i = 0 to burst mod 5 do
      Pipeline.submit pipe ((burst * 10) + i, [ (burst + i) mod n_resources ])
    done;
    (* wait until this burst has been fully executed before sending the
       next: forces partial-batch forwarding every time *)
    let expected = Atomic.get applied + 1 + (burst mod 5) in
    let b = Doradd_queue.Backoff.create () in
    while Atomic.get applied < expected do
      Doradd_queue.Backoff.once b
    done
  done;
  Pipeline.flush_and_stop pipe;
  Runtime.shutdown runtime;
  checki "all bursts applied" 60 (Atomic.get applied)

let test_pipeline_concurrent_submitters () =
  (* several client threads submit concurrently: the input queue is the
     serialization point.  The op is commutative (addition), so any
     interleaving yields the same final state, which we can check. *)
  let cell = Resource.create 0 in
  let cells = [| cell |] in
  let applied = Atomic.make 0 in
  let runtime = Runtime.create ~workers:2 () in
  let pipe = Pipeline.start ~stages:Pipeline.Two_core ~runtime (pipe_service_add cells applied) in
  let producers = 3 and per_producer = 2_000 in
  let domains =
    Array.init producers (fun p ->
        Domain.spawn (fun () ->
            for i = 1 to per_producer do
              Pipeline.submit pipe ((p * per_producer) + i, [ 0 ])
            done))
  in
  Array.iter Domain.join domains;
  Pipeline.flush_and_stop pipe;
  Runtime.shutdown runtime;
  checki "all spawned" (producers * per_producer) (Pipeline.spawned pipe);
  (* sum of (p*per+i) over all p, i *)
  let expected = ref 0 in
  for p = 0 to producers - 1 do
    for i = 1 to per_producer do
      expected := !expected + (p * per_producer) + i
    done
  done;
  checki "commutative total" !expected (Resource.get cell)

let test_pipeline_core_counts () =
  checki "one" 1 (Pipeline.core_count Pipeline.One_core);
  checki "one-np" 1 (Pipeline.core_count Pipeline.One_core_no_prefetch);
  checki "two" 2 (Pipeline.core_count Pipeline.Two_core);
  checki "three" 3 (Pipeline.core_count Pipeline.Three_core);
  checki "four" 4 (Pipeline.core_count Pipeline.Four_core)

let test_pipeline_empty_flush () =
  let runtime = Runtime.create ~workers:1 () in
  let cells = Array.init 1 (fun _ -> Resource.create 0) in
  let pipe =
    Pipeline.start ~stages:Pipeline.Three_core ~runtime (pipe_service cells (Atomic.make 0))
  in
  Pipeline.flush_and_stop pipe;
  checki "nothing spawned" 0 (Pipeline.spawned pipe);
  Runtime.shutdown runtime

let test_pipeline_try_submit () =
  let runtime = Runtime.create ~workers:1 () in
  let cells = Array.init 1 (fun _ -> Resource.create 0) in
  let applied = Atomic.make 0 in
  let pipe = Pipeline.start ~stages:Pipeline.One_core ~runtime (pipe_service cells applied) in
  checkb "accepts" true (Pipeline.try_submit pipe (0, [ 0 ]));
  Pipeline.flush_and_stop pipe;
  Runtime.shutdown runtime;
  checki "applied" 1 (Atomic.get applied)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "core"
    [
      ( "node",
        [
          tc "dispatch guard" `Quick test_node_guard;
          tc "dependency flow" `Quick test_node_dependency_flow;
          tc "register after done" `Quick test_node_register_after_done;
          tc "ready order" `Quick test_node_multiple_dependents_ready_order;
          tc "double complete rejected" `Quick test_node_double_complete_rejected;
          tc "pool recycles nodes" `Quick test_node_pool_recycles;
          tc "stale slot reference ignored" `Quick test_node_pool_stale_slot_reference;
          tc "diamond" `Quick test_node_diamond;
        ] );
      ( "footprint",
        [
          tc "dedup" `Quick test_footprint_dedup;
          tc "write dominates" `Quick test_footprint_write_dominates;
          tc "sorted" `Quick test_footprint_sorted_by_id;
          tc "empty" `Quick test_footprint_empty;
          tc "mem" `Quick test_footprint_mem;
          QCheck_alcotest.to_alcotest prop_footprint_normal_form;
        ] );
      ( "spawner",
        [
          tc "figure 4 DAG" `Quick test_spawner_figure4;
          tc "conflict chain serialises" `Quick test_spawner_chain;
          tc "independent requests parallel" `Quick test_spawner_independent;
          tc "empty footprint" `Quick test_spawner_empty_footprint;
          tc "self duplicate" `Quick test_spawner_self_duplicate;
          tc "readers share" `Quick test_spawner_readers_share;
          tc "all-write serialises" `Quick test_spawner_all_write_serializes_reads;
          tc "writer waits all readers" `Quick test_spawner_writer_waits_all_readers;
          QCheck_alcotest.to_alcotest prop_spawner_respects_conflicts;
        ] );
      ( "runnable-set",
        [
          tc "round robin" `Quick test_runnable_set_round_robin;
          tc "own queue" `Quick test_runnable_set_worker_own_queue;
          tc "steal" `Quick test_runnable_set_steal;
          tc "overflow runs inline" `Quick test_runnable_set_overflow_runs_inline;
        ] );
      ( "runtime",
        [
          tc "matches serial (1 worker)" `Slow (test_runtime_matches_serial 1);
          tc "matches serial (2 workers)" `Slow (test_runtime_matches_serial 2);
          tc "matches serial (4 workers)" `Slow (test_runtime_matches_serial 4);
          tc "contended single key" `Slow test_runtime_contended_single_key;
          tc "counters" `Quick test_runtime_counters;
          tc "empty shutdown" `Quick test_runtime_empty_shutdown;
          tc "workers validation" `Quick test_runtime_workers_validation;
          tc "bank invariant" `Slow test_runtime_bank_invariant;
          tc "read-mode snapshots" `Slow test_runtime_read_mode_snapshots;
          tc "failure injection" `Quick test_runtime_failure_injection;
          tc "failure in yield step" `Quick test_runtime_failure_in_yield_step;
          tc "overflow inline path" `Slow test_runtime_overflow_inline_path;
          tc "deep chain, tiny queues" `Slow test_runtime_deep_chain_small_queues;
          QCheck_alcotest.to_alcotest prop_runtime_deterministic;
          QCheck_alcotest.to_alcotest prop_runtime_worker_count_invariant;
        ] );
      ( "pipeline",
        [
          tc "core counts" `Quick test_pipeline_core_counts;
          tc "one-core variant" `Slow (run_pipeline_variant Pipeline.One_core);
          tc "one-core-no-prefetch variant" `Slow (run_pipeline_variant Pipeline.One_core_no_prefetch);
          tc "two-core variant" `Slow (run_pipeline_variant Pipeline.Two_core);
          tc "three-core variant" `Slow (run_pipeline_variant Pipeline.Three_core);
          tc "four-core variant" `Slow (run_pipeline_variant Pipeline.Four_core);
          tc "bursty input" `Slow test_pipeline_bursty_input;
          tc "concurrent submitters" `Slow test_pipeline_concurrent_submitters;
          tc "empty flush" `Quick test_pipeline_empty_flush;
          tc "try submit" `Quick test_pipeline_try_submit;
        ] );
    ]

(* TCP front-end tests: wire codecs, incremental frame reassembly over
   adversarial chunk boundaries, the hardened syscall helpers, and the
   live loopback server — whose central claim is the wire-determinism
   win condition: whatever a client observes over TCP must match an
   in-process serial replay of the server's request log. *)

module Net = Doradd_net
module Wire = Net.Wire
module Codec = Doradd_persist.Codec
module Sysio = Doradd_persist.Sysio
module Db = Doradd_db
module Rng = Doradd_stats.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

(* ------------------------------------------------------------------ *)
(* Wire codecs                                                         *)
(* ------------------------------------------------------------------ *)

let test_wire_roundtrips () =
  let rng = Rng.create 7 in
  for _ = 1 to 200 do
    let req_id = Rng.int rng (Wire.max_req_id + 1) in
    let body = String.init (Rng.int rng 64) (fun _ -> Char.chr (Rng.int rng 256)) in
    (match Wire.decode_request (Wire.encode_request ~req_id ~body) with
    | Ok (id, b) -> checkb "request roundtrip" true (id = req_id && b = body)
    | Error e -> Alcotest.fail e);
    let reply =
      {
        Wire.req_id;
        stamp = Rng.int rng max_int;
        status = Rng.int rng 2;
        result = Int64.to_int (Rng.next_int64 rng);
      }
    in
    (match Wire.decode_reply (Wire.encode_reply reply) with
    | Ok r -> checkb "reply roundtrip" true (r = reply)
    | Error e -> Alcotest.fail e);
    let kv =
      {
        Wire.work = Rng.int rng 10_000;
        ops =
          Array.init (Rng.int rng 8) (fun _ ->
              { Wire.key = Rng.int rng 100_000; update = Rng.bool rng });
      }
    in
    (match Wire.decode_kv (Wire.encode_kv kv) with
    | Ok k -> checkb "kv roundtrip" true (k = kv)
    | Error e -> Alcotest.fail e)
  done

let test_tpcc_roundtrip () =
  let cfg = { Db.Tpcc_db.warehouses = 4; customers_per_district = 50; items = 200 } in
  let txns = Db.Tpcc_db.generate ~remote_pct:30 (Db.Tpcc_db.create cfg) (Rng.create 3) ~n:100 in
  Array.iter
    (fun txn ->
      match Wire.decode_tpcc (Wire.encode_tpcc txn) with
      | Ok t -> checkb "tpcc roundtrip" true (t = txn)
      | Error e -> Alcotest.fail e)
    txns

let test_wire_rejects () =
  let err = function Error _ -> true | Ok _ -> false in
  checkb "short request" true (err (Wire.decode_request "abc"));
  checkb "wrong reply length" true (err (Wire.decode_reply "short"));
  checkb "kv wrong tag" true (err (Wire.decode_kv "Xtail"));
  checkb "kv short header" true (err (Wire.decode_kv "K"));
  (* op count says 2, body carries 1 *)
  let one_op = Wire.encode_kv { Wire.work = 0; ops = [| { Wire.key = 5; update = true } |] } in
  let lying = Bytes.of_string one_op in
  Bytes.set lying 5 '\x02';
  checkb "kv op count lies" true (err (Wire.decode_kv (Bytes.to_string lying)));
  (* bad op kind *)
  let bad_kind = Bytes.of_string one_op in
  Bytes.set bad_kind 7 'Z';
  checkb "kv bad op kind" true (err (Wire.decode_kv (Bytes.to_string bad_kind)));
  checkb "tpcc wrong tag" true (err (Wire.decode_tpcc "K"));
  checkb "tpcc bad kind" true (err (Wire.decode_tpcc "TZ"));
  let no =
    Wire.encode_tpcc
      (Db.Tpcc_db.New_order { no_w = 0; no_d = 1; no_c = 2; lines = [| (0, 3, 4) |] })
  in
  checkb "tpcc truncated lines" true
    (err (Wire.decode_tpcc (String.sub no 0 (String.length no - 5))))

(* ------------------------------------------------------------------ *)
(* Codec u32 hardening (the 32-bit sign-extension bugfix)               *)
(* ------------------------------------------------------------------ *)

let test_codec_u32_boundary () =
  (* all-0xFF header: decodes as u32 length 2^32-1 (or saturates to
     max_int on 31-bit ints) — always > max_payload, always Bad_length,
     never a negative length slipping past the guards *)
  (match Codec.read_at (String.make 16 '\xFF') ~pos:0 with
  | Codec.Torn (Codec.Bad_length n) -> checkb "all-FF length positive" true (n > Codec.max_payload)
  | _ -> Alcotest.fail "all-FF header must be Bad_length");
  (* high-bit headers across the whole top byte: never Record, never raises *)
  for b3 = 0x01 to 0xFF do
    let h = Bytes.make 8 '\x00' in
    Bytes.set h 3 (Char.chr b3);
    match Codec.read_at (Bytes.to_string h) ~pos:0 with
    | Codec.Torn (Codec.Bad_length n) -> checkb "u32 length positive" true (n > 0)
    | Codec.Torn Codec.Truncated -> ()
    | _ -> Alcotest.fail "high length field must be Bad_length or Truncated"
  done;
  (* the exact boundary: len = max_payload is a valid (truncated here)
     frame; len = max_payload + 1 is corruption *)
  let header len =
    let h = Bytes.make 8 '\x00' in
    Bytes.set h 0 (Char.chr (len land 0xFF));
    Bytes.set h 1 (Char.chr ((len lsr 8) land 0xFF));
    Bytes.set h 2 (Char.chr ((len lsr 16) land 0xFF));
    Bytes.set h 3 (Char.chr ((len lsr 24) land 0xFF));
    Bytes.to_string h
  in
  (match Codec.read_at (header Codec.max_payload) ~pos:0 with
  | Codec.Torn Codec.Truncated -> ()
  | _ -> Alcotest.fail "len = max_payload with short buffer must be Truncated");
  match Codec.read_at (header (Codec.max_payload + 1)) ~pos:0 with
  | Codec.Torn (Codec.Bad_length _) -> ()
  | _ -> Alcotest.fail "len = max_payload + 1 must be Bad_length"

let prop_codec_header_never_crashes =
  QCheck.Test.make ~name:"random 8-byte headers: decode is total and non-negative"
    ~count:500
    QCheck.(string_of_size (QCheck.Gen.return 8))
    (fun h ->
      match Codec.read_at h ~pos:0 with
      | Codec.Torn (Codec.Bad_length n) -> n > Codec.max_payload || n < 0 = false
      | Codec.Torn Codec.Truncated | Codec.Torn (Codec.Bad_crc _) -> true
      | Codec.Record _ -> true (* len 0 frame whose crc happens to match *)
      | Codec.End -> false)

(* ------------------------------------------------------------------ *)
(* Frame reassembly                                                    *)
(* ------------------------------------------------------------------ *)

(* split [0, n) at random boundaries; chunk size 1 is common *)
let random_chunks rng n =
  let rec go pos acc =
    if pos >= n then List.rev acc
    else
      let len = min (n - pos) (1 + Rng.int rng 7) in
      go (pos + len) ((pos, len) :: acc)
  in
  go 0 []

let prop_reassembly_any_chunking =
  QCheck.Test.make
    ~name:"reassembly over random chunk boundaries = the frame sequence" ~count:200
    QCheck.(pair small_int (small_list (string_of_size QCheck.Gen.small_nat)))
    (fun (seed, payloads) ->
      let rng = Rng.create seed in
      let stream = String.concat "" (List.map Codec.frame payloads) in
      let reader = Net.Frame_reader.create ~initial_capacity:8 () in
      let got = ref [] in
      List.iter
        (fun (pos, len) ->
          Net.Frame_reader.feed reader (Bytes.of_string stream) ~pos ~len;
          let rec drain () =
            match Net.Frame_reader.next reader with
            | `Frame p ->
              got := p :: !got;
              drain ()
            | `Need_more -> ()
            | `Error _ -> QCheck.Test.fail_report "unexpected framing error"
          in
          drain ())
        (random_chunks rng (String.length stream));
      List.rev !got = payloads && Net.Frame_reader.at_eof reader = None)

let test_reassembly_one_byte_feeds () =
  let payloads = [ ""; "a"; String.make 300 'x'; "tail" ] in
  let stream = String.concat "" (List.map Codec.frame payloads) in
  let reader = Net.Frame_reader.create ~initial_capacity:4 () in
  let got = ref [] in
  String.iteri
    (fun i _ ->
      Net.Frame_reader.feed reader (Bytes.of_string stream) ~pos:i ~len:1;
      let rec drain () =
        match Net.Frame_reader.next reader with
        | `Frame p ->
          got := p :: !got;
          drain ()
        | `Need_more -> ()
        | `Error e -> Alcotest.fail (Codec.error_to_string e)
      in
      drain ())
    stream;
  checkb "all frames out" true (List.rev !got = payloads);
  checkb "clean eof" true (Net.Frame_reader.at_eof reader = None)

let test_reassembly_torn_and_corrupt () =
  (* torn: missing tail bytes never yield a frame, and eof says Truncated *)
  let frame = Codec.frame "payload-bytes" in
  let reader = Net.Frame_reader.create () in
  Net.Frame_reader.feed reader (Bytes.of_string frame) ~pos:0
    ~len:(String.length frame - 3);
  checkb "torn frame pends" true (Net.Frame_reader.next reader = `Need_more);
  checkb "eof mid-frame is Truncated" true
    (Net.Frame_reader.at_eof reader = Some Codec.Truncated);
  (* bad crc: a complete lying frame is a fatal stream error *)
  let corrupt = Bytes.of_string frame in
  Bytes.set corrupt (Codec.header_bytes + 2) 'X';
  let reader = Net.Frame_reader.create () in
  Net.Frame_reader.feed reader corrupt ~pos:0 ~len:(Bytes.length corrupt);
  (match Net.Frame_reader.next reader with
  | `Error (Codec.Bad_crc _) -> ()
  | _ -> Alcotest.fail "corrupt frame must surface Bad_crc");
  (* bad length: poisoned header *)
  let reader = Net.Frame_reader.create () in
  Net.Frame_reader.feed reader (Bytes.make 12 '\xFF') ~pos:0 ~len:12;
  match Net.Frame_reader.next reader with
  | `Error (Codec.Bad_length _) -> ()
  | _ -> Alcotest.fail "oversized length must surface Bad_length"

(* ------------------------------------------------------------------ *)
(* Sysio hardening                                                     *)
(* ------------------------------------------------------------------ *)

let test_sysio_retry () =
  let attempts = ref 0 in
  let v =
    Sysio.retry (fun () ->
        incr attempts;
        if !attempts < 4 then raise (Unix.Unix_error (Unix.EINTR, "write", ""))
        else 42)
  in
  checki "value after retries" 42 v;
  checki "three EINTRs retried" 4 !attempts;
  (* other errors propagate *)
  checkb "EIO propagates" true
    (match Sysio.retry (fun () -> raise (Unix.Unix_error (Unix.EIO, "fsync", ""))) with
    | exception Unix.Unix_error (Unix.EIO, _, _) -> true
    | _ -> false)

let test_sysio_write_read_pipe () =
  (* short writes are real on pipes: push 1 MiB through a 64 KiB pipe
     with a concurrent reader and compare checksums *)
  let r, w = Unix.pipe ~cloexec:true () in
  let payload = String.init 1_048_576 (fun i -> Char.chr (i * 31 land 0xff)) in
  let received = Buffer.create (String.length payload) in
  let reader =
    Thread.create
      (fun () ->
        let buf = Bytes.create 8192 in
        let rec loop () =
          match Sysio.read r buf ~pos:0 ~len:(Bytes.length buf) with
          | 0 -> ()
          | n ->
            Buffer.add_subbytes received buf 0 n;
            loop ()
        in
        loop ())
      ()
  in
  Sysio.write_all w payload ~pos:0 ~len:(String.length payload);
  Unix.close w;
  Thread.join reader;
  Unix.close r;
  checkb "pipe roundtrip" true (Buffer.contents received = payload)

let test_sysio_fsync_dir () =
  let dir = Filename.temp_dir "doradd_test_net_fsync" "" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  (* must not raise on a real directory (EINVAL-class errors are the
     only ones swallowed) *)
  Sysio.fsync_dir dir;
  (* a missing directory is a real error and must propagate *)
  checkb "ENOENT propagates" true
    (match Sysio.fsync_dir (Filename.concat dir "nope") with
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Live loopback server                                                *)
(* ------------------------------------------------------------------ *)

let with_server ?(shards = 2) ?wal_dir backend_of f =
  let server =
    Net.Server.start
      { Net.Server.default_config with shards; wal_dir; wal_fsync = false }
      (backend_of ())
  in
  Fun.protect ~finally:(fun () -> Net.Server.stop server) (fun () -> f server)

let kv_keys = 512

let kv_backend () = Net.Backend.kv ~n_keys:kv_keys ()

let kv_body rng =
  Wire.encode_kv
    {
      Wire.work = 0;
      ops =
        Array.init
          (1 + Rng.int rng 4)
          (fun _ -> { Wire.key = Rng.int rng kv_keys; update = Rng.bool rng });
    }

(* the win condition, straight from ISSUE.md: N concurrent loopback
   clients, and everything they observed — per-request results and the
   final digest — equals the serial replay of the server's log *)
let test_concurrent_clients_deterministic () =
  with_server kv_backend @@ fun server ->
  let n_clients = 4 and per_client = 150 in
  let observed = Array.make (n_clients * per_client) None in
  let clients =
    Array.init n_clients (fun c ->
        Thread.create
          (fun () ->
            let client = Net.Client.connect ~port:(Net.Server.port server) () in
            let rng = Rng.create (1000 + c) in
            for i = 0 to per_client - 1 do
              let r = Net.Client.call client ~req_id:i ~body:(kv_body rng) in
              checki "req_id echoed" i r.Wire.req_id;
              observed.((c * per_client) + i) <-
                Some (r.Wire.stamp, r.Wire.status, r.Wire.result)
            done;
            Net.Client.close client)
          ())
  in
  Array.iter Thread.join clients;
  Net.Server.stop server;
  let log = Net.Server.request_log server in
  checki "every request sequenced" (n_clients * per_client) (Array.length log);
  let sdigest, sresults = Net.Backend.replay_serial kv_backend log in
  checkb "state digest = serial replay" true (Net.Server.digest server = sdigest);
  Array.iter
    (function
      | None -> Alcotest.fail "reply missing"
      | Some (stamp, status, result) -> (
        match sresults.(stamp) with
        | Some r ->
          checkb "result = serial replay" true (status = Wire.status_ok && result = r)
        | None -> Alcotest.fail "serial replay lost a stamp"))
    observed

let test_malformed_body_consumes_stamp () =
  with_server kv_backend @@ fun server ->
  let client = Net.Client.connect ~port:(Net.Server.port server) () in
  let rng = Rng.create 11 in
  let r0 = Net.Client.call client ~req_id:0 ~body:(kv_body rng) in
  let r1 = Net.Client.call client ~req_id:1 ~body:"Zgarbage" in
  (* an out-of-range key decodes fine but fails name resolution: same
     malformed path, state untouched *)
  let oob =
    Wire.encode_kv { Wire.work = 0; ops = [| { Wire.key = kv_keys; update = true } |] }
  in
  let r2 = Net.Client.call client ~req_id:2 ~body:oob in
  let r3 = Net.Client.call client ~req_id:3 ~body:(kv_body rng) in
  Net.Client.close client;
  Net.Server.stop server;
  checki "garbage is malformed" Wire.status_malformed r1.Wire.status;
  checki "out-of-range key is malformed" Wire.status_malformed r2.Wire.status;
  checkb "good requests ok" true
    (r0.Wire.status = Wire.status_ok && r3.Wire.status = Wire.status_ok);
  checkb "stamps dense" true
    (List.map (fun (r : Wire.reply) -> r.stamp) [ r0; r1; r2; r3 ] = [ 0; 1; 2; 3 ]);
  let log = Net.Server.request_log server in
  checki "malformed kept in log" 4 (Array.length log);
  checki "malformed counted" 2 (Net.Server.stats server).Net.Server.malformed;
  let sdigest, sresults = Net.Backend.replay_serial kv_backend log in
  checkb "replay marks the same stamps malformed" true
    (sresults.(1) = None && sresults.(2) = None);
  checkb "digest matches replay with no-op stamps" true
    (Net.Server.digest server = sdigest)

let test_bad_crc_poisons_connection () =
  with_server kv_backend @@ fun server ->
  let client = Net.Client.connect ~port:(Net.Server.port server) () in
  let good = Codec.frame (Wire.encode_request ~req_id:0 ~body:"anything") in
  let corrupt = Bytes.of_string good in
  Bytes.set corrupt (Codec.header_bytes + 1) 'X';
  Net.Client.send_raw client (Bytes.to_string corrupt);
  (* the server must close without replying *)
  checkb "connection closed, no reply" true
    (match Net.Client.recv client with Error (Eof | Torn) -> true | _ -> false);
  Net.Client.close client;
  (* oversized length field: same poison path *)
  let client2 = Net.Client.connect ~port:(Net.Server.port server) () in
  Net.Client.send_raw client2 (String.make 16 '\xFF');
  checkb "bad length closes too" true
    (match Net.Client.recv client2 with Error (Eof | Torn) -> true | _ -> false);
  Net.Client.close client2;
  (* fresh connections keep working; nothing was sequenced *)
  let client3 = Net.Client.connect ~port:(Net.Server.port server) () in
  let r = Net.Client.call client3 ~req_id:9 ~body:(kv_body (Rng.create 5)) in
  Net.Client.close client3;
  Net.Server.stop server;
  checkb "survivor gets stamp 0" true (r.Wire.stamp = 0 && r.Wire.status = Wire.status_ok);
  let s = Net.Server.stats server in
  checki "two framing errors" 2 s.Net.Server.framing_errors;
  checki "nothing from poisoned conns sequenced" 1
    (Array.length (Net.Server.request_log server))

let test_disconnect_mid_request () =
  (* seeded: clients vanish mid-frame at random points; the server keeps
     serving everyone else and determinism is unaffected *)
  let rng = Rng.create 23 in
  with_server kv_backend @@ fun server ->
  for _ = 1 to 8 do
    let body = kv_body rng in
    let frame = Codec.frame (Wire.encode_request ~req_id:0 ~body) in
    let cut = 1 + Rng.int rng (String.length frame - 1) in
    let client = Net.Client.connect ~port:(Net.Server.port server) () in
    Net.Client.send_raw client (String.sub frame 0 cut);
    Net.Client.close client
  done;
  (* a full request then an abrupt close before reading the reply: the
     sequenced request must still execute (reply write may be dropped) *)
  let client = Net.Client.connect ~port:(Net.Server.port server) () in
  Net.Client.send client ~req_id:0 ~body:(kv_body rng);
  Net.Client.close client;
  let survivor = Net.Client.connect ~port:(Net.Server.port server) () in
  let replies =
    Array.init 20 (fun i -> Net.Client.call survivor ~req_id:i ~body:(kv_body rng))
  in
  Net.Client.close survivor;
  Net.Server.stop server;
  let log = Net.Server.request_log server in
  checki "abandoned + survivor requests sequenced" 21 (Array.length log);
  let sdigest, sresults = Net.Backend.replay_serial kv_backend log in
  checkb "digest matches replay" true (Net.Server.digest server = sdigest);
  Array.iter
    (fun (r : Wire.reply) ->
      checkb "survivor results match replay" true
        (sresults.(r.stamp) = Some r.result && r.status = Wire.status_ok))
    replies;
  let s = Net.Server.stats server in
  checkb "torn disconnects counted" true (s.Net.Server.torn_disconnects >= 8)

let test_one_byte_trickle_over_tcp () =
  with_server kv_backend @@ fun server ->
  let client = Net.Client.connect ~port:(Net.Server.port server) () in
  let body = kv_body (Rng.create 31) in
  let frame = Codec.frame (Wire.encode_request ~req_id:77 ~body) in
  String.iter (fun c -> Net.Client.send_raw client (String.make 1 c)) frame;
  (match Net.Client.recv client with
  | Ok r -> checkb "trickled request answered" true (r.Wire.req_id = 77)
  | Error e -> Alcotest.fail (Net.Client.recv_error_to_string e));
  Net.Client.close client

let test_durable_wal_matches_log () =
  let dir = Filename.temp_dir "doradd_test_net_wal" "" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let log =
    with_server ~wal_dir:dir kv_backend @@ fun server ->
    let client = Net.Client.connect ~port:(Net.Server.port server) () in
    let rng = Rng.create 13 in
    for i = 0 to 49 do
      let r = Net.Client.call client ~req_id:i ~body:(kv_body rng) in
      checki "durable run ok" Wire.status_ok r.Wire.status
    done;
    Net.Client.close client;
    Net.Server.stop server;
    Net.Server.request_log server
  in
  let scan = (Doradd_persist.Wal.scan ~dir).Doradd_persist.Wal.records in
  checki "one WAL record per request" (Array.length log) (Array.length scan);
  Array.iteri
    (fun i (seqno, data) ->
      checkb "WAL record = logged body" true (seqno = i && data = log.(i)))
    scan

let test_loadgen_open_loop () =
  with_server kv_backend @@ fun server ->
  let report =
    Net.Loadgen.run
      {
        Net.Loadgen.default_cfg with
        port = Net.Server.port server;
        connections = 3;
        requests = 300;
        rate = 20_000.0;
        seed = 9;
        workload =
          Net.Loadgen.Kv
            {
              n_keys = kv_keys;
              ops_per_txn = 3;
              update_pct = 50;
              heavy_pct = 10;
              light_work = 10;
              heavy_work = 500;
            };
        collect_replies = true;
      }
  in
  Net.Server.stop server;
  checki "all sent" 300 report.Net.Loadgen.sent;
  checki "all answered" 300 report.Net.Loadgen.received;
  checki "none malformed" 0 report.Net.Loadgen.malformed;
  checki "stamps collected" 300 (Array.length report.Net.Loadgen.replies);
  (* collected stamps are exactly 0..n-1 (sorted, dense) *)
  Array.iteri
    (fun i (stamp, _, _) -> checki "dense stamps" i stamp)
    report.Net.Loadgen.replies;
  checkb "percentiles ordered" true
    (report.Net.Loadgen.p50_ns <= report.Net.Loadgen.p99_ns
    && report.Net.Loadgen.p99_ns <= report.Net.Loadgen.p999_ns
    && report.Net.Loadgen.p999_ns <= report.Net.Loadgen.max_ns);
  let sdigest, sresults =
    Net.Backend.replay_serial kv_backend (Net.Server.request_log server)
  in
  checkb "loadgen run deterministic" true (Net.Server.digest server = sdigest);
  Array.iter
    (fun (stamp, status, result) ->
      checkb "loadgen replies match replay" true
        (status = Wire.status_ok && sresults.(stamp) = Some result))
    report.Net.Loadgen.replies

let () =
  Alcotest.run "net"
    [
      ( "wire",
        [
          Alcotest.test_case "request/reply/kv roundtrips" `Quick test_wire_roundtrips;
          Alcotest.test_case "tpcc roundtrip" `Quick test_tpcc_roundtrip;
          Alcotest.test_case "hostile inputs rejected" `Quick test_wire_rejects;
        ] );
      ( "codec-u32",
        [
          Alcotest.test_case "unsigned boundary + all-FF headers" `Quick
            test_codec_u32_boundary;
          QCheck_alcotest.to_alcotest prop_codec_header_never_crashes;
        ] );
      ( "reassembly",
        [
          QCheck_alcotest.to_alcotest prop_reassembly_any_chunking;
          Alcotest.test_case "one-byte feeds" `Quick test_reassembly_one_byte_feeds;
          Alcotest.test_case "torn / bad-crc / bad-length" `Quick
            test_reassembly_torn_and_corrupt;
        ] );
      ( "sysio",
        [
          Alcotest.test_case "retry eats EINTR, propagates EIO" `Quick test_sysio_retry;
          Alcotest.test_case "write_all/read across a pipe" `Quick
            test_sysio_write_read_pipe;
          Alcotest.test_case "fsync_dir error policy" `Quick test_sysio_fsync_dir;
        ] );
      ( "server",
        [
          Alcotest.test_case "concurrent clients = serial replay" `Quick
            test_concurrent_clients_deterministic;
          Alcotest.test_case "malformed body consumes a stamp" `Quick
            test_malformed_body_consumes_stamp;
          Alcotest.test_case "bad crc / bad length poison the connection" `Quick
            test_bad_crc_poisons_connection;
          Alcotest.test_case "disconnect mid-request" `Quick test_disconnect_mid_request;
          Alcotest.test_case "one-byte trickle over tcp" `Quick
            test_one_byte_trickle_over_tcp;
          Alcotest.test_case "durable WAL = request log" `Quick
            test_durable_wal_matches_log;
          Alcotest.test_case "open-loop loadgen end to end" `Quick test_loadgen_open_loop;
        ] );
    ]

(* Unit and property tests for the doradd_stats substrate. *)

open Doradd_stats

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  checkb "different seeds diverge" true (Rng.next_int64 a <> Rng.next_int64 b)

let test_rng_copy_independent () =
  let a = Rng.create 7 in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  check Alcotest.int64 "copy continues identically" (Rng.next_int64 a) (Rng.next_int64 b);
  ignore (Rng.next_int64 a);
  (* advancing a does not advance b *)
  let a2 = Rng.next_int64 a and b2 = Rng.next_int64 b in
  checkb "copies evolve independently" true (a2 <> b2)

let test_rng_split_independent () =
  let a = Rng.create 3 in
  let c = Rng.split a in
  let xs = List.init 50 (fun _ -> Rng.next_int64 a) in
  let ys = List.init 50 (fun _ -> Rng.next_int64 c) in
  checkb "split streams differ" true (xs <> ys)

let test_rng_int_bounds () =
  let r = Rng.create 11 in
  for _ = 1 to 10_000 do
    let x = Rng.int r 17 in
    checkb "0 <= x < 17" true (x >= 0 && x < 17)
  done;
  Alcotest.check_raises "bound must be positive" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_int_in_bounds () =
  let r = Rng.create 12 in
  for _ = 1 to 1_000 do
    let x = Rng.int_in r (-5) 5 in
    checkb "in range" true (x >= -5 && x <= 5)
  done

let test_rng_unit_float_range () =
  let r = Rng.create 13 in
  for _ = 1 to 10_000 do
    let x = Rng.unit_float r in
    checkb "[0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_rng_int_covers () =
  (* every residue of a small bound should appear *)
  let r = Rng.create 5 in
  let seen = Array.make 7 false in
  for _ = 1 to 1_000 do
    seen.(Rng.int r 7) <- true
  done;
  Array.iteri (fun i b -> checkb (Printf.sprintf "residue %d seen" i) true b) seen

let test_rng_shuffle_permutation () =
  let r = Rng.create 99 in
  let a = Array.init 100 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "is a permutation" (Array.init 100 Fun.id) sorted

let test_rng_bool_balanced () =
  let r = Rng.create 21 in
  let trues = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bool r then incr trues
  done;
  checkb "roughly balanced" true (!trues > 4_500 && !trues < 5_500)

(* ------------------------------------------------------------------ *)
(* Distributions                                                       *)
(* ------------------------------------------------------------------ *)

let test_exponential_mean () =
  let r = Rng.create 31 in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let x = Distributions.exponential r ~mean:5.0 in
    checkb "non-negative" true (x >= 0.0);
    sum := !sum +. x
  done;
  let mean = !sum /. float_of_int n in
  checkb "mean close to 5.0" true (Float.abs (mean -. 5.0) < 0.15)

let test_zipf_bounds () =
  let z = Distributions.zipf ~n:1000 ~theta:0.99 in
  let r = Rng.create 41 in
  for _ = 1 to 10_000 do
    let k = Distributions.zipf_sample z r in
    checkb "in [0,n)" true (k >= 0 && k < 1000)
  done

let test_zipf_uniform_degenerate () =
  let z = Distributions.zipf ~n:100 ~theta:0.0 in
  let r = Rng.create 42 in
  let counts = Array.make 100 0 in
  for _ = 1 to 100_000 do
    let k = Distributions.zipf_sample z r in
    counts.(k) <- counts.(k) + 1
  done;
  (* Expect ~1000 per cell; allow generous slack. *)
  Array.iteri
    (fun i c -> checkb (Printf.sprintf "cell %d uniform-ish" i) true (c > 600 && c < 1400))
    counts

let test_zipf_skew () =
  let z = Distributions.zipf ~n:10_000 ~theta:0.99 in
  let r = Rng.create 43 in
  let top = ref 0 and n = 100_000 in
  for _ = 1 to n do
    let k = Distributions.zipf_sample z r in
    if k < 10 then incr top
  done;
  (* With theta=0.99 over 10k elements, the top-10 should absorb a large
     fraction of the mass (analytically ~29%); uniform would give 0.1%. *)
  checkb "top-10 heavily loaded" true (float_of_int !top /. float_of_int n > 0.15)

let test_zipf_rank_order () =
  let z = Distributions.zipf ~n:1_000 ~theta:1.1 in
  let r = Rng.create 44 in
  let counts = Array.make 1_000 0 in
  for _ = 1 to 200_000 do
    let k = Distributions.zipf_sample z r in
    counts.(k) <- counts.(k) + 1
  done;
  checkb "rank 0 most popular" true (counts.(0) > counts.(10));
  checkb "rank 10 beats rank 500" true (counts.(10) > counts.(500))

let test_zipf_theta_monotone () =
  (* higher theta => more mass on rank 0 *)
  let mass theta =
    let z = Distributions.zipf ~n:1_000 ~theta in
    let r = Rng.create 45 in
    let hits = ref 0 in
    for _ = 1 to 50_000 do
      if Distributions.zipf_sample z r = 0 then incr hits
    done;
    !hits
  in
  let low = mass 0.5 and high = mass 1.2 in
  checkb "skew grows with theta" true (high > low)

let test_scramble_bijective_sample () =
  (* No collisions over a large sample of consecutive inputs. *)
  let tbl = Hashtbl.create 100_000 in
  for i = 0 to 99_999 do
    let v = Distributions.scramble i in
    checkb "no collision" false (Hashtbl.mem tbl v);
    Hashtbl.add tbl v ()
  done

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

let test_histogram_empty () =
  let h = Histogram.create () in
  checki "count" 0 (Histogram.count h);
  checki "p99 of empty" 0 (Histogram.percentile h 99.0);
  checki "min" 0 (Histogram.min_value h);
  checki "max" 0 (Histogram.max_value h)

let test_histogram_exact_small_values () =
  (* Values below the sub-bucket count are recorded exactly. *)
  let h = Histogram.create () in
  for v = 0 to 200 do
    Histogram.record h v
  done;
  checki "count" 201 (Histogram.count h);
  checki "min" 0 (Histogram.min_value h);
  checki "max" 200 (Histogram.max_value h);
  checki "median" 100 (Histogram.percentile h 50.0)

let test_histogram_percentile_accuracy () =
  let h = Histogram.create () in
  let r = Rng.create 77 in
  let values = Array.init 50_000 (fun _ -> Rng.int r 10_000_000) in
  Array.iter (Histogram.record h) values;
  Array.sort compare values;
  List.iter
    (fun p ->
      let exact = values.(int_of_float (ceil (p /. 100.0 *. 50_000.0)) - 1) in
      let approx = Histogram.percentile h p in
      let err = Float.abs (float_of_int (approx - exact)) /. float_of_int (max exact 1) in
      checkb (Printf.sprintf "p%.0f within 2%%" p) true (err < 0.02))
    [ 50.0; 90.0; 99.0; 99.9 ]

let test_histogram_p100_is_max () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 5; 17; 123_456; 3 ];
  checki "p100 bucket holds max" (Histogram.max_value h) 123_456;
  let p100 = Histogram.percentile h 100.0 in
  (* p100 returns the bucket lower bound containing the max *)
  checkb "p100 close to max" true
    (float_of_int (123_456 - p100) /. 123_456.0 < 0.02)

let test_histogram_record_n () =
  let h = Histogram.create () in
  Histogram.record_n h 10 1_000;
  Histogram.record_n h 1_000 1 |> ignore;
  checki "count" 1_001 (Histogram.count h);
  checki "p50" 10 (Histogram.percentile h 50.0)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  for i = 1 to 100 do
    Histogram.record a i
  done;
  for i = 101 to 200 do
    Histogram.record b i
  done;
  Histogram.merge_into ~dst:a b;
  checki "merged count" 200 (Histogram.count a);
  checki "merged max" 200 (Histogram.max_value a);
  checki "merged min" 1 (Histogram.min_value a);
  checki "merged median" 100 (Histogram.percentile a 50.0)

let test_histogram_negative_clamped () =
  let h = Histogram.create () in
  Histogram.record h (-5);
  checki "clamped to 0" 0 (Histogram.min_value h);
  checki "count" 1 (Histogram.count h)

let test_histogram_mean () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 10; 20; 30 ];
  checkb "mean" true (Float.abs (Histogram.mean h -. 20.0) < 0.001)

let test_histogram_clear () =
  let h = Histogram.create () in
  Histogram.record h 42;
  Histogram.clear h;
  checki "count after clear" 0 (Histogram.count h);
  Histogram.record h 7;
  checki "usable after clear" 7 (Histogram.percentile h 50.0)

let test_histogram_large_values () =
  let h = Histogram.create () in
  let big = 1 lsl 55 in
  Histogram.record h big;
  let p = Histogram.percentile h 50.0 in
  checkb "relative error bounded for huge values" true
    (Float.abs (float_of_int (p - big)) /. float_of_int big < 0.02)

(* qcheck: percentile is monotone in p *)
let prop_percentile_monotone =
  QCheck.Test.make ~name:"histogram percentile monotone" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 200) (int_range 0 1_000_000))
    (fun values ->
      let h = Histogram.create () in
      List.iter (Histogram.record h) values;
      let ps = [ 1.0; 10.0; 25.0; 50.0; 75.0; 90.0; 99.0; 100.0 ] in
      let vs = List.map (Histogram.percentile h) ps in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono vs)

(* qcheck: count is preserved under merge *)
let prop_merge_count =
  QCheck.Test.make ~name:"histogram merge preserves count" ~count:100
    QCheck.(pair (list (int_range 0 100_000)) (list (int_range 0 100_000)))
    (fun (xs, ys) ->
      let a = Histogram.create () and b = Histogram.create () in
      List.iter (Histogram.record a) xs;
      List.iter (Histogram.record b) ys;
      Histogram.merge_into ~dst:a b;
      Histogram.count a = List.length xs + List.length ys)

(* qcheck: merge is associative on everything observable *)
let prop_merge_associative =
  let build values =
    let h = Histogram.create () in
    List.iter (Histogram.record h) values;
    h
  in
  QCheck.Test.make ~name:"histogram merge associative" ~count:100
    QCheck.(
      triple
        (list (int_range 0 1_000_000))
        (list (int_range 0 1_000_000))
        (list (int_range 0 1_000_000)))
    (fun (xs, ys, zs) ->
      (* (a <- b) <- c versus a' <- (b' <- c') over fresh histograms *)
      let left = build xs in
      Histogram.merge_into ~dst:left (build ys);
      Histogram.merge_into ~dst:left (build zs);
      let bc = build ys in
      Histogram.merge_into ~dst:bc (build zs);
      let right = build xs in
      Histogram.merge_into ~dst:right bc;
      Histogram.count left = Histogram.count right
      && Histogram.min_value left = Histogram.min_value right
      && Histogram.max_value left = Histogram.max_value right
      && Float.abs (Histogram.mean left -. Histogram.mean right) <= 1e-9
      && List.for_all
           (fun p -> Histogram.percentile left p = Histogram.percentile right p)
           [ 1.0; 25.0; 50.0; 90.0; 99.0; 99.9; 100.0 ])

(* qcheck: histogram and summary agree on the same sample stream, within
   the histogram's bucket precision (~1/sub_bucket_count relative; small
   values land in exact unit-width buckets, hence the absolute slack) *)
let prop_summary_histogram_agree =
  let agree a b =
    Float.abs (a -. b) <= Float.max 2.0 (0.02 *. Float.max (Float.abs a) (Float.abs b))
  in
  QCheck.Test.make ~name:"summary and histogram agree" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 300) (int_range 0 2_000_000))
    (fun values ->
      let h = Histogram.create () and s = Summary.create () in
      List.iter
        (fun v ->
          Histogram.record h v;
          Summary.add s (float_of_int v))
        values;
      Histogram.count h = Summary.count s
      && agree (Histogram.mean h) (Summary.mean s)
      (* histogram min/max are bucket bounds bracketing the true extremes *)
      && float_of_int (Histogram.min_value h) <= Summary.min_value s
      && agree (float_of_int (Histogram.min_value h)) (Summary.min_value s)
      && float_of_int (Histogram.max_value h) >= Summary.max_value s
      && agree (float_of_int (Histogram.max_value h)) (Summary.max_value s))

(* ------------------------------------------------------------------ *)
(* Summary                                                             *)
(* ------------------------------------------------------------------ *)

let test_summary_basic () =
  let s = Summary.create () in
  List.iter (Summary.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  checki "count" 8 (Summary.count s);
  checkb "mean" true (Float.abs (Summary.mean s -. 5.0) < 1e-9);
  checkb "variance" true (Float.abs (Summary.variance s -. 4.0) < 1e-9);
  checkb "stddev" true (Float.abs (Summary.stddev s -. 2.0) < 1e-9);
  checkb "min" true (Summary.min_value s = 2.0);
  checkb "max" true (Summary.max_value s = 9.0)

let test_summary_empty () =
  let s = Summary.create () in
  checkb "mean of empty" true (Summary.mean s = 0.0);
  checkb "variance of empty" true (Summary.variance s = 0.0)

let test_summary_merge () =
  let xs = [ 1.0; 2.0; 3.0 ] and ys = [ 10.0; 20.0; 30.0; 40.0 ] in
  let a = Summary.create () and b = Summary.create () and whole = Summary.create () in
  List.iter (Summary.add a) xs;
  List.iter (Summary.add b) ys;
  List.iter (Summary.add whole) (xs @ ys);
  let m = Summary.merge a b in
  checki "merged count" (Summary.count whole) (Summary.count m);
  checkb "merged mean" true (Float.abs (Summary.mean m -. Summary.mean whole) < 1e-9);
  checkb "merged variance" true (Float.abs (Summary.variance m -. Summary.variance whole) < 1e-9)

let prop_summary_matches_direct =
  QCheck.Test.make ~name:"summary matches direct computation" ~count:200
    QCheck.(list_of_size Gen.(int_range 2 100) (float_range (-1000.) 1000.))
    (fun xs ->
      let s = Summary.create () in
      List.iter (Summary.add s) xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let var = List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. n in
      Float.abs (Summary.mean s -. mean) < 1e-6 && Float.abs (Summary.variance s -. var) < 1e-4)

(* ------------------------------------------------------------------ *)
(* Table                                                               *)
(* ------------------------------------------------------------------ *)

let test_table_render () =
  let out =
    Table.render ~title:"T" ~header:[ "name"; "value" ]
      [ [ "alpha"; "1" ]; [ "b"; "22222" ] ]
  in
  checkb "has title" true (String.length out > 0 && String.sub out 0 1 = "T");
  (* all data lines should be the same width *)
  let lines = String.split_on_char '\n' out |> List.filter (fun l -> l <> "") in
  checki "line count" 5 (List.length lines)

let test_table_alignment () =
  let out = Table.render ~header:[ "a"; "b" ] [ [ "x"; "9" ] ] in
  checkb "right-aligns numbers by default" true
    (String.length out > 0)

let test_table_csv_format () =
  Table.set_format Table.Csv;
  Fun.protect
    ~finally:(fun () -> Table.set_format Table.Pretty)
    (fun () ->
      let out =
        Table.render ~title:"T" ~header:[ "a"; "b" ] [ [ "x,y"; "1" ]; [ "he\"llo"; "2" ] ]
      in
      let lines = String.split_on_char '\n' out |> List.filter (fun l -> l <> "") in
      Alcotest.check (Alcotest.list Alcotest.string) "csv output"
        [ "# T"; "a,b"; "\"x,y\",1"; "\"he\"\"llo\",2" ]
        lines)

let test_fmt_rate () =
  check Alcotest.string "Mrps" "1.28 Mrps" (Table.fmt_rate 1_280_000.0);
  check Alcotest.string "Krps" "5.0 Krps" (Table.fmt_rate 5_000.0);
  check Alcotest.string "rps" "900 rps" (Table.fmt_rate 900.0)

let test_fmt_ns () =
  check Alcotest.string "ns" "800 ns" (Table.fmt_ns 800);
  check Alcotest.string "us" "15.3 us" (Table.fmt_ns 15_300);
  check Alcotest.string "ms" "2.50 ms" (Table.fmt_ns 2_500_000);
  check Alcotest.string "s" "1.50 s" (Table.fmt_ns 1_500_000_000)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "stats"
    [
      ( "rng",
        [
          tc "deterministic" `Quick test_rng_deterministic;
          tc "seed sensitivity" `Quick test_rng_seed_sensitivity;
          tc "copy independent" `Quick test_rng_copy_independent;
          tc "split independent" `Quick test_rng_split_independent;
          tc "int bounds" `Quick test_rng_int_bounds;
          tc "int_in bounds" `Quick test_rng_int_in_bounds;
          tc "unit_float range" `Quick test_rng_unit_float_range;
          tc "int covers residues" `Quick test_rng_int_covers;
          tc "shuffle permutation" `Quick test_rng_shuffle_permutation;
          tc "bool balanced" `Quick test_rng_bool_balanced;
        ] );
      ( "distributions",
        [
          tc "exponential mean" `Quick test_exponential_mean;
          tc "zipf bounds" `Quick test_zipf_bounds;
          tc "zipf uniform degenerate" `Quick test_zipf_uniform_degenerate;
          tc "zipf skew" `Quick test_zipf_skew;
          tc "zipf rank order" `Quick test_zipf_rank_order;
          tc "zipf theta monotone" `Quick test_zipf_theta_monotone;
          tc "scramble collision-free" `Quick test_scramble_bijective_sample;
        ] );
      ( "histogram",
        [
          tc "empty" `Quick test_histogram_empty;
          tc "exact small values" `Quick test_histogram_exact_small_values;
          tc "percentile accuracy" `Quick test_histogram_percentile_accuracy;
          tc "p100 is max" `Quick test_histogram_p100_is_max;
          tc "record_n" `Quick test_histogram_record_n;
          tc "merge" `Quick test_histogram_merge;
          tc "negative clamped" `Quick test_histogram_negative_clamped;
          tc "mean" `Quick test_histogram_mean;
          tc "clear" `Quick test_histogram_clear;
          tc "large values" `Quick test_histogram_large_values;
          QCheck_alcotest.to_alcotest prop_percentile_monotone;
          QCheck_alcotest.to_alcotest prop_merge_count;
          QCheck_alcotest.to_alcotest prop_merge_associative;
        ] );
      ( "summary",
        [
          tc "basic" `Quick test_summary_basic;
          tc "empty" `Quick test_summary_empty;
          tc "merge" `Quick test_summary_merge;
          QCheck_alcotest.to_alcotest prop_summary_matches_direct;
          QCheck_alcotest.to_alcotest prop_summary_histogram_agree;
        ] );
      ( "table",
        [
          tc "render" `Quick test_table_render;
          tc "alignment" `Quick test_table_alignment;
          tc "csv format" `Quick test_table_csv_format;
          tc "fmt_rate" `Quick test_fmt_rate;
          tc "fmt_ns" `Quick test_fmt_ns;
        ] );
    ]

(* Tests for the effects-based suspendable transactions (Effects +
   Waitset + Runtime.schedule_suspendable): resume order is stamp order,
   resumption is exactly-once, nested suspends compose, suspension works
   inside cross-shard bodies, and — the central property — a program
   with fuzzed suspend points is byte-identical to its straight-line
   serial run. *)

module Core = Doradd_core
module Rng = Doradd_stats.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let fp_of r = Core.Footprint.of_slots [ Core.Resource.slot r ]

(* ------------------------------------------------------------------ *)
(* Wait-set unit behaviour                                             *)
(* ------------------------------------------------------------------ *)

let test_waitset_basics () =
  let t = Core.Waitset.create () in
  checkb "not fired at creation" false (Core.Waitset.fired t);
  let ran = ref [] in
  checkb "park before fire accepted" true
    (Core.Waitset.park t ~stamp:7 (fun () -> ran := 7 :: !ran));
  checkb "second park accepted" true
    (Core.Waitset.park t ~stamp:3 (fun () -> ran := 3 :: !ran));
  let batch = ref [||] in
  Core.Waitset.fire ~on_batch:(fun b -> batch := Array.copy b) t;
  checkb "fired after fire" true (Core.Waitset.fired t);
  checkb "entries ran in stamp order" true (List.rev !ran = [ 3; 7 ]);
  checkb "batch observed stamps ascending" true (!batch = [| 3; 7 |]);
  (* exactly-once: a second fire runs nothing *)
  Core.Waitset.fire t;
  checki "no re-runs on double fire" 2 (List.length !ran);
  (* a park against a fired trigger is refused: continue inline *)
  checkb "park after fire refused" false
    (Core.Waitset.park t ~stamp:9 (fun () -> ran := 9 :: !ran));
  checki "refused park never runs" 2 (List.length !ran)

(* ------------------------------------------------------------------ *)
(* Resume order and exactly-once on the real runtime                   *)
(* ------------------------------------------------------------------ *)

let test_resume_stamp_order () =
  Core.Effects.reset_counters ();
  let batches = ref [] in
  Core.Effects.set_batch_observer (Some (fun b -> batches := Array.copy b :: !batches));
  Fun.protect
    ~finally:(fun () -> Core.Effects.set_batch_observer None)
    (fun () ->
      let rt = Core.Runtime.create ~workers:1 () in
      let trig = Core.Effects.trigger () in
      let m = 8 in
      let cells = Array.init m (fun i -> Core.Resource.create i) in
      (* single worker, FIFO queue: waiters park in stamp order, then the
         firer runs; the resumed bodies append here from that worker *)
      let order = ref [] in
      for i = 0 to m - 1 do
        Core.Runtime.schedule_suspendable rt (fp_of cells.(i)) (fun () ->
            Core.Effects.await trig;
            order := i :: !order)
      done;
      let fcell = Core.Resource.create 0 in
      Core.Runtime.schedule_suspendable rt (fp_of fcell) (fun () -> Core.Effects.fire trig);
      Core.Runtime.drain rt;
      Core.Runtime.shutdown rt;
      checkb "post-await bodies ran in stamp order" true
        (List.rev !order = List.init m Fun.id);
      (match !batches with
      | [ b ] -> checkb "one batch, stamps ascending 0..m-1" true (b = Array.init m Fun.id)
      | l -> Alcotest.failf "expected exactly one resume batch, got %d" (List.length l));
      checki "every waiter suspended once" m (Core.Effects.suspend_count ());
      checki "every suspension resumed once" m (Core.Effects.resume_count ()))

let test_exactly_once_resume () =
  Core.Effects.reset_counters ();
  let rt = Core.Runtime.create ~workers:4 () in
  let trig = Core.Effects.trigger () in
  let m = 64 in
  let cells = Array.init m (fun _ -> Core.Resource.create 0) in
  for i = 0 to m - 1 do
    Core.Runtime.schedule_suspendable rt (fp_of cells.(i)) (fun () ->
        Core.Effects.await trig;
        (* unsynchronised increment: correct only if the continuation
           after the await runs exactly once *)
        Core.Resource.update cells.(i) succ)
  done;
  let fcell = Core.Resource.create 0 in
  (* two firers race: fire is idempotent, resumption exactly-once *)
  let gcell = Core.Resource.create 0 in
  Core.Runtime.schedule_suspendable rt (fp_of fcell) (fun () -> Core.Effects.fire trig);
  Core.Runtime.schedule_suspendable rt (fp_of gcell) (fun () -> Core.Effects.fire trig);
  Core.Runtime.drain rt;
  Core.Runtime.shutdown rt;
  Array.iteri
    (fun i c -> checki (Printf.sprintf "waiter %d ran its tail exactly once" i) 1 (Core.Resource.peek c))
    cells;
  (* with 4 workers some waiters may observe the trigger already fired
     and continue inline (never parked): those count as neither suspend
     nor resume, so the two counters still balance *)
  checki "resumes = suspends after drain" (Core.Effects.suspend_count ())
    (Core.Effects.resume_count ());
  checkb "no over-resumption" true (Core.Effects.suspend_count () <= m)

let test_nested_suspends () =
  Core.Effects.reset_counters ();
  (* one worker makes the parks deterministic: the FIFO queue guarantees
     the waiter parks on trig1 before firer1 runs, and the second firer
     is only scheduled (from this thread) once the second park is
     observed — so the same transaction genuinely parks twice *)
  let rt = Core.Runtime.create ~workers:1 () in
  let trig1 = Core.Effects.trigger () and trig2 = Core.Effects.trigger () in
  let marks = Atomic.make [] in
  let mark m =
    let rec add () =
      let cur = Atomic.get marks in
      if not (Atomic.compare_and_set marks cur (m :: cur)) then add ()
    in
    add ()
  in
  let wcell = Core.Resource.create 0 in
  Core.Runtime.schedule_suspendable rt (fp_of wcell) (fun () ->
      mark 1;
      Core.Effects.await trig1;
      mark 2;
      Core.Effects.await trig2;
      mark 3);
  let f1 = Core.Resource.create 0 in
  Core.Runtime.schedule_suspendable rt (fp_of f1) (fun () -> Core.Effects.fire trig1);
  while Core.Effects.suspend_count () < 2 do
    Domain.cpu_relax ()
  done;
  let f2 = Core.Resource.create 0 in
  Core.Runtime.schedule_suspendable rt (fp_of f2) (fun () -> Core.Effects.fire trig2);
  Core.Runtime.drain rt;
  Core.Runtime.shutdown rt;
  checkb "marks in program order" true (List.rev (Atomic.get marks) = [ 1; 2; 3 ]);
  checki "two genuine parks" 2 (Core.Effects.suspend_count ());
  checki "two resumes" 2 (Core.Effects.resume_count ())

let test_await_outside_fiber_raises () =
  let trig = Core.Effects.trigger () in
  (match Core.Effects.await trig with
  | () -> Alcotest.fail "await outside a suspendable transaction must raise"
  | exception Invalid_argument _ -> ());
  (* yield, by contrast, is a no-op outside fibers so plain bodies and
     library helpers may call it unconditionally *)
  Core.Runtime.yield ();
  (* and await on an already-fired trigger is a no-op anywhere *)
  Core.Effects.fire trig;
  Core.Effects.await trig

(* ------------------------------------------------------------------ *)
(* Suspension inside a cross-shard body                                *)
(* ------------------------------------------------------------------ *)

let test_suspend_in_cross_shard_body () =
  Core.Effects.reset_counters ();
  let a = Core.Resource.create ~pkey:0 0 and b = Core.Resource.create ~pkey:1 0 in
  let n = 100 in
  let hits = Array.make n 0 in
  let rt = Core.Sharded_runtime.create ~shards:2 ~workers_per_shard:2 () in
  let fp = Core.Footprint.of_slots [ Core.Resource.slot a; Core.Resource.slot b ] in
  for i = 0 to n - 1 do
    Core.Sharded_runtime.schedule rt fp (fun () ->
        hits.(i) <- hits.(i) + 1;
        let va = Core.Resource.get a in
        (* the body runs on the last arriver's fiber, so it may suspend
           on top of the barrier the participants already crossed *)
        Core.Runtime.yield ();
        Core.Resource.set a (va + 1);
        Core.Runtime.yield ();
        Core.Resource.set b (Core.Resource.get b + 1))
  done;
  Core.Sharded_runtime.drain rt;
  Core.Sharded_runtime.shutdown rt;
  checkb "every body ran exactly once" true (Array.for_all (fun h -> h = 1) hits);
  checki "resource a" n (Core.Resource.peek a);
  checki "resource b" n (Core.Resource.peek b);
  checkb "no failures" true (Core.Sharded_runtime.failures rt = []);
  checki "resumes = suspends" (Core.Effects.suspend_count ()) (Core.Effects.resume_count ());
  (* every body yielded twice on top of whatever the barrier parked *)
  checkb "bodies actually suspended" true (Core.Effects.suspend_count () >= 2 * n)

(* ------------------------------------------------------------------ *)
(* The property: fuzzed suspend points are serial-equivalent           *)
(* ------------------------------------------------------------------ *)

(* random multi-step KV programs: each op reads its key into a running
   sum, then adds a delta.  Suspend points are derived from the seed: a
   per-op coin decides whether to yield before the op, and reads go
   through Service.fetch with a miss hook armed, so both wait sites get
   exercised. *)
type op = { key : int; delta : int }

let gen_program ~seed ~n ~n_keys =
  let rng = Rng.create (seed lxor 0x00ef_fec7) in
  Array.init n (fun _ ->
      Array.init
        (1 + Rng.int rng 5)
        (fun _ -> { key = Rng.int rng n_keys; delta = Rng.int rng 9 }))

let serial_run ~n_keys txns =
  let store = Array.make n_keys 0 in
  let results =
    Array.map
      (fun ops ->
        Array.fold_left
          (fun acc { key; delta } ->
            let v = store.(key) in
            store.(key) <- v + delta;
            acc + v)
          0 ops)
      txns
  in
  (Array.to_list store, Array.to_list results)

let suspendable_run ~seed ~workers ~n_keys txns =
  let cells = Array.init n_keys (fun _ -> Core.Resource.create 0) in
  let results = Array.make (Array.length txns) 0 in
  (* impure seeded coin: which fetches miss is not deterministic across
     schedules, and must not need to be — a miss is a wait, not a result *)
  let ctr = Atomic.make seed in
  Core.Service.set_fetch_miss (Some (fun () -> Atomic.fetch_and_add ctr 1 land 3 = 0));
  Fun.protect
    ~finally:(fun () -> Core.Service.set_fetch_miss None)
    (fun () ->
      let rt = Core.Runtime.create ~workers () in
      let yield_rng = Rng.create (seed lxor 0x0079_6c64) in
      Array.iteri
        (fun id ops ->
          let fp =
            Core.Footprint.of_list
              (Array.to_list
                 (Array.map
                    (fun { key; _ } -> (Core.Resource.slot cells.(key), Core.Footprint.Write))
                    ops))
          in
          (* seed-derived suspend points, fixed at schedule time *)
          let yields = Array.map (fun _ -> Rng.int yield_rng 4 = 0) ops in
          Core.Runtime.schedule_suspendable rt fp (fun () ->
              let acc = ref 0 in
              Array.iteri
                (fun i { key; delta } ->
                  if yields.(i) then Core.Runtime.yield ();
                  let v = Core.Service.fetch cells.(key) in
                  Core.Resource.set cells.(key) (v + delta);
                  acc := !acc + v)
                ops;
              results.(id) <- !acc))
        txns;
      Core.Runtime.drain rt;
      Core.Runtime.shutdown rt);
  (Array.to_list (Array.map Core.Resource.peek cells), Array.to_list results)

let prop_fuzzed_suspends_serial_equiv =
  QCheck.Test.make
    ~name:"suspendable kv: fuzzed suspend points = straight-line serial" ~count:15
    QCheck.(triple (int_range 1 1_000_000) (int_range 10 80) (int_range 1 4))
    (fun (seed, n, workers) ->
      let n_keys = 32 in
      let txns = gen_program ~seed ~n ~n_keys in
      let s_store, s_results = serial_run ~n_keys txns in
      let p_store, p_results = suspendable_run ~seed ~workers ~n_keys txns in
      s_store = p_store && s_results = p_results)

let () =
  Alcotest.run "effects"
    [
      ( "waitset",
        [ Alcotest.test_case "park/fire unit behaviour" `Quick test_waitset_basics ] );
      ( "runtime",
        [
          Alcotest.test_case "resume in stamp order" `Quick test_resume_stamp_order;
          Alcotest.test_case "exactly-once resume" `Quick test_exactly_once_resume;
          Alcotest.test_case "nested suspends" `Quick test_nested_suspends;
          Alcotest.test_case "await outside fiber raises; yield no-op" `Quick
            test_await_outside_fiber_raises;
          Alcotest.test_case "suspend inside cross-shard body" `Quick
            test_suspend_in_cross_shard_body;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_fuzzed_suspends_serial_equiv ]);
    ]

(* Golden-shape regression tests for the experiment harnesses in FAST
   mode.  The smoke-mode shape tests in test_experiments.ml gate the
   qualitative claims at toy scale; these pin the fast-mode numbers CI
   actually publishes to golden bands, so a runtime or simulator change
   that silently shifts a headline result (who wins, by roughly what
   factor) fails the suite instead of drifting.

   Bands are deliberately wide (the fast-mode measurements are stable to
   a few percent; the bands allow several times that) — they encode the
   paper's claims, not bit-exact output. *)

module E = Doradd_experiments

let checkb = Alcotest.check Alcotest.bool

let mode = E.Mode.Fast

let in_band name lo hi v =
  if not (v >= lo && v <= hi) then
    Alcotest.failf "%s: %.2f outside golden band [%.2f, %.2f]" name v lo hi

(* Fig 2 (fast mode measures ~79%/5.8% batches, ~72%/18% stragglers;
   paper reports 81%/6%): pin each percentage to a band and the DORADD
   advantage to a floor. *)
let test_fig2_golden () =
  let r = E.Fig2.measure ~mode in
  let find label = List.find (fun row -> row.E.Fig2.label = label) r.E.Fig2.rows in
  let d_batch = (find "contended-batches DORADD").E.Fig2.pct_of_ideal in
  let c_batch = (find "contended-batches Caracal").E.Fig2.pct_of_ideal in
  let d_str = (find "stragglers DORADD").E.Fig2.pct_of_ideal in
  let c_str = (find "stragglers Caracal").E.Fig2.pct_of_ideal in
  in_band "DORADD contended-batches %% of ideal" 70.0 90.0 d_batch;
  in_band "Caracal contended-batches %% of ideal" 3.0 10.0 c_batch;
  in_band "DORADD stragglers %% of ideal" 60.0 85.0 d_str;
  in_band "Caracal stragglers %% of ideal" 10.0 25.0 c_str;
  checkb "batches: DORADD ~13x Caracal" true (d_batch > 8.0 *. c_batch);
  checkb "stragglers: DORADD ~4x Caracal" true (d_str > 2.5 *. c_str)

(* Fig 6 orderings: per-workload who-wins and latency-floor claims, at
   fast-mode fidelity. *)
let test_fig6_golden () =
  let r = E.Fig6.measure ~mode in
  Alcotest.(check int) "six workloads" 6 (List.length r);
  let get name = List.find (fun w -> w.E.Fig6.workload = name) r in
  let sys w label = List.find (fun s -> s.E.Sweep.label = label) w.E.Fig6.systems in
  let doradd w = sys w "DORADD" in
  let caracals w =
    List.filter
      (fun s ->
        String.length s.E.Sweep.label >= 7 && String.sub s.E.Sweep.label 0 7 = "Caracal")
      w.E.Fig6.systems
  in
  let best_caracal w =
    List.fold_left (fun acc s -> max acc s.E.Sweep.max_tput) 0.0 (caracals w)
  in
  (* uncontended: peaks comparable (within 2x either way) but DORADD's
     tail is orders of magnitude lower — Caracal's floor is its epoch *)
  let yno = get "YCSB no-contention" in
  let d = doradd yno in
  let bc = best_caracal yno in
  checkb "uncontended peaks comparable" true
    (d.E.Sweep.max_tput < 2.0 *. bc && bc < 2.0 *. d.E.Sweep.max_tput);
  (* at half load, where queueing delay is negligible, the latency floor
     is purely architectural: DORADD's is a dispatch, Caracal's an epoch *)
  let low_p99 s = (List.hd s.E.Sweep.points).E.Sweep.p99 in
  List.iter
    (fun c ->
      checkb
        ("uncontended p99: DORADD >100x below " ^ c.E.Sweep.label)
        true
        (low_p99 c > 100 * low_p99 d))
    (caracals yno);
  (* contention: DORADD's peak advantage grows with contention *)
  let peak_ratio name =
    let w = get name in
    (doradd w).E.Sweep.max_tput /. best_caracal w
  in
  (* fast mode measures ~2.3x at moderate and ~2.2x at high contention
     (paper: up to 2.5x); pin both to a band rather than an ordering *)
  in_band "moderate contention peak ratio" 1.5 4.0 (peak_ratio "YCSB mod-contention");
  in_band "high contention peak ratio" 1.5 4.0 (peak_ratio "YCSB high-contention");
  (* 1-warehouse TPC-C: naive DORADD serialises on the warehouse row;
     the split footprint rescues it past every Caracal *)
  let t1 = get "TPCC-NP 1 warehouse" in
  let naive = (doradd t1).E.Sweep.max_tput in
  let split = (sys t1 "DORADD-split").E.Sweep.max_tput in
  checkb "naive serialised under 0.5 Mrps" true (naive < 0.5e6);
  checkb "split >= 4x naive" true (split > 4.0 *. naive);
  checkb "split beats best Caracal" true (split > best_caracal t1);
  (* per-system sanity on every workload: achieved load is monotone in
     offered load, and p99 never sits below p50 *)
  List.iter
    (fun w ->
      List.iter
        (fun s ->
          List.iter
            (fun p -> checkb "p99 >= p50" true (p.E.Sweep.p99 >= p.E.Sweep.p50))
            s.E.Sweep.points;
          let rec nondecreasing = function
            | a :: (b :: _ as rest) ->
              a.E.Sweep.achieved <= b.E.Sweep.achieved *. 1.05 && nondecreasing rest
            | _ -> true
          in
          checkb
            (w.E.Fig6.workload ^ "/" ^ s.E.Sweep.label ^ ": achieved tracks offered")
            true
            (nondecreasing s.E.Sweep.points))
        w.E.Fig6.systems)
    r

let () =
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "doradd golden shapes (fast mode)"
    [
      ("fig2", [ slow "percent-of-ideal golden bands" test_fig2_golden ]);
      ("fig6", [ slow "who-wins orderings and factors" test_fig6_golden ]);
    ]

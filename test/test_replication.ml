(* Tests for real primary-backup replication: both replicas execute the
   same log through their own runtime and must converge, without the
   primary ever waiting for backup execution. *)

module Pb = Doradd_replication.Primary_backup
module Db = Doradd_db
module Core = Doradd_core
module Rng = Doradd_stats.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let mk_kv_replicas ~n_keys =
  let primary = Db.Store.create () in
  Db.Store.populate primary ~n:n_keys;
  let backup = Db.Store.create () in
  Db.Store.populate backup ~n:n_keys;
  (primary, backup)

let mk_txns ~seed ~n ~n_keys =
  let rng = Rng.create seed in
  Array.init n (fun id ->
      let ops =
        Array.init 4 (fun _ ->
            {
              Db.Kv.key = Rng.int rng n_keys;
              kind = (if Rng.bool rng then Db.Kv.Read else Db.Kv.Update);
            })
      in
      { Db.Kv.id; ops })

let test_replicas_converge () =
  let n_keys = 100 in
  let primary, backup = mk_kv_replicas ~n_keys in
  let n = 5_000 in
  let txns = mk_txns ~seed:1 ~n ~n_keys in
  let p_res = Array.make n 0 and b_res = Array.make n 0 in
  let t =
    Pb.create ~workers:2
      ~primary_footprint:(Db.Kv.footprint primary)
      ~primary_execute:(Db.Kv.execute primary ~results:p_res)
      ~backup_footprint:(Db.Kv.footprint backup)
      ~backup_execute:(Db.Kv.execute backup ~results:b_res)
      ()
  in
  Array.iter (Pb.submit t) txns;
  Pb.shutdown t;
  checki "all submitted" n (Pb.submitted t);
  checki "backup applied everything" n (Pb.backup_applied t);
  let keys = Array.init n_keys Fun.id in
  checki "states equal" (Db.Kv.state_digest primary ~keys) (Db.Kv.state_digest backup ~keys);
  checkb "read results equal" true (p_res = b_res)

let test_replicas_converge_under_contention () =
  (* every request touches the same row: worst-case ordering pressure *)
  let primary, backup = mk_kv_replicas ~n_keys:1 in
  let n = 2_000 in
  let txns =
    Array.init n (fun id -> { Db.Kv.id; ops = [| { Db.Kv.key = 0; kind = Db.Kv.Update } |] })
  in
  let p_res = Array.make n 0 and b_res = Array.make n 0 in
  let t =
    Pb.create ~workers:3
      ~primary_footprint:(Db.Kv.footprint primary)
      ~primary_execute:(Db.Kv.execute primary ~results:p_res)
      ~backup_footprint:(Db.Kv.footprint backup)
      ~backup_execute:(Db.Kv.execute backup ~results:b_res)
      ()
  in
  Array.iter (Pb.submit t) txns;
  Pb.shutdown t;
  checki "hot row equal"
    (Db.Kv.state_digest primary ~keys:[| 0 |])
    (Db.Kv.state_digest backup ~keys:[| 0 |])

let test_replicated_tpcc () =
  let cfg = { Db.Tpcc_db.warehouses = 1; customers_per_district = 30; items = 200 } in
  let primary = Db.Tpcc_db.create cfg in
  let backup = Db.Tpcc_db.create cfg in
  let txns = Db.Tpcc_db.generate primary (Rng.create 3) ~n:3_000 in
  let t =
    Pb.create ~workers:2
      ~primary_footprint:(Db.Tpcc_db.footprint primary)
      ~primary_execute:(Db.Tpcc_db.execute primary)
      ~backup_footprint:(Db.Tpcc_db.footprint backup)
      ~backup_execute:(Db.Tpcc_db.execute backup)
      ()
  in
  Array.iter (Pb.submit t) txns;
  Pb.shutdown t;
  checki "tpcc replicas equal" (Db.Tpcc_db.digest primary) (Db.Tpcc_db.digest backup)

(* ------------------------------------------------------------------ *)
(* Sequencer + crash recovery                                          *)
(* ------------------------------------------------------------------ *)

module Seq = Doradd_replication.Sequencer

let test_sequencer_orders_concurrent_clients () =
  (* many producer domains; every request must be delivered exactly once
     with dense, in-order sequence numbers *)
  let producers = 4 and per_producer = 5_000 in
  let total = producers * per_producer in
  let next_expected = ref 0 in
  let dense = ref true in
  let seen = Array.make total false in
  let s =
    Seq.create
      ~deliver:(fun ~seqno req ->
        if seqno <> !next_expected then dense := false;
        incr next_expected;
        if seen.(req) then failwith "duplicate";
        seen.(req) <- true)
      ()
  in
  let domains =
    Array.init producers (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to per_producer - 1 do
              Seq.submit s ((p * per_producer) + i)
            done))
  in
  Array.iter Domain.join domains;
  Seq.stop s;
  checki "all delivered" total (Seq.delivered s);
  checkb "dense in-order seqnos" true !dense;
  Array.iteri (fun i x -> checkb (Printf.sprintf "req %d delivered" i) true x) seen;
  checki "log length" total (Array.length (Seq.log s))

let test_sequencer_log_matches_delivery () =
  let order = ref [] in
  let s = Seq.create ~deliver:(fun ~seqno:_ req -> order := req :: !order) () in
  List.iter (Seq.submit s) [ 10; 20; 30; 40 ];
  Seq.stop s;
  let delivered = List.rev !order in
  Alcotest.check (Alcotest.list Alcotest.int) "log = delivery order" delivered
    (Array.to_list (Seq.log s));
  Alcotest.check_raises "submit after stop" (Invalid_argument "Sequencer.submit: stopped")
    (fun () -> Seq.submit s 99)

let test_crash_recovery_via_log_replay () =
  (* the DPS recovery use case: run a sequenced workload through the
     runtime, "crash" (discard state), replay the sequencer's retained
     log on a fresh runtime -> identical state *)
  let n_keys = 50 in
  let store = Db.Store.create () in
  Db.Store.populate store ~n:n_keys;
  let txns = mk_txns ~seed:5 ~n:4_000 ~n_keys in
  let results = Array.make (Array.length txns) 0 in
  let runtime = Core.Runtime.create ~workers:2 () in
  let s =
    Seq.create
      ~deliver:(fun ~seqno:_ txn ->
        Core.Runtime.schedule runtime (Db.Kv.footprint store txn)
          (fun () -> Db.Kv.execute store ~results txn))
      ()
  in
  (* two concurrent clients interleave their submissions: the sequencer
     fixes the authoritative order *)
  let half = Array.length txns / 2 in
  let c1 = Domain.spawn (fun () -> Array.iteri (fun i t -> if i < half then Seq.submit s t) txns) in
  let c2 = Domain.spawn (fun () -> Array.iteri (fun i t -> if i >= half then Seq.submit s t) txns) in
  Domain.join c1;
  Domain.join c2;
  Seq.stop s;
  Core.Runtime.shutdown runtime;
  let keys = Array.init n_keys Fun.id in
  let pre_crash = Db.Kv.state_digest store ~keys in
  (* crash: lose the store; recover by replaying the retained log *)
  let recovered = Db.Store.create () in
  Db.Store.populate recovered ~n:n_keys;
  let results2 = Array.make (Array.length txns) 0 in
  Core.Runtime.run_log ~workers:3 (Db.Kv.footprint recovered)
    (fun txn -> Db.Kv.execute recovered ~results:results2 txn)
    (Seq.log s);
  checki "recovered state = pre-crash state" pre_crash (Db.Kv.state_digest recovered ~keys)

(* ------------------------------------------------------------------ *)
(* Replication under DST perturbation                                  *)
(* ------------------------------------------------------------------ *)

module Dst = Doradd_dst

(* Drive Primary_backup directly under seeded perturbation plans: both
   replicas get the same fuzz hooks, and determinism must still make
   them converge on every plan. *)
let test_pb_converges_under_fuzz () =
  List.iter
    (fun seed ->
      let plan = Dst.Plan.derive ~seed in
      let n_keys = 64 in
      let primary, backup = mk_kv_replicas ~n_keys in
      let n = 400 in
      let txns = mk_txns ~seed ~n ~n_keys in
      let p_res = Array.make n 0 and b_res = Array.make n 0 in
      Dst.Harness.with_plan ~seed plan (fun fuzz ->
          let t =
            Pb.create ~workers:plan.workers ~queue_capacity:plan.queue_capacity ?fuzz
              ~primary_footprint:(Db.Kv.footprint primary)
              ~primary_execute:(Db.Kv.execute primary ~results:p_res)
              ~backup_footprint:(Db.Kv.footprint backup)
              ~backup_execute:(Db.Kv.execute backup ~results:b_res)
              ()
          in
          Array.iter (Pb.submit t) txns;
          Pb.shutdown t;
          checki
            (Printf.sprintf "seed %d: backup applied all" seed)
            n (Pb.backup_applied t));
      let keys = Array.init n_keys Fun.id in
      checki
        (Printf.sprintf "seed %d: replicas equal under %s" seed (Dst.Plan.to_string plan))
        (Db.Kv.state_digest primary ~keys)
        (Db.Kv.state_digest backup ~keys);
      checkb (Printf.sprintf "seed %d: read results equal" seed) true (p_res = b_res))
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

(* The full DST stack (serial-equivalence oracle + replica-divergence
   invariant) over the registered replication case. *)
let test_replication_case_seed_sweep () =
  List.iter
    (fun seed ->
      let r = Dst.Runner.replay ~case:"replication" ~n:96 ~seed () in
      checkb
        (Printf.sprintf "replication case clean under seed %d" seed)
        true (Dst.Runner.seed_ok r))
    [ 0; 3; 11; 17; 23 ]

let test_replication_case_registered () =
  checkb "replication in Cases.all" true (List.mem "replication" Dst.Cases.names);
  checkb "replication findable" true (Dst.Cases.find "replication" <> None)

let test_empty_shutdown () =
  let primary, backup = mk_kv_replicas ~n_keys:1 in
  let t =
    Pb.create ~workers:1
      ~primary_footprint:(Db.Kv.footprint primary)
      ~primary_execute:(Db.Kv.execute primary ~results:[| 0 |])
      ~backup_footprint:(Db.Kv.footprint backup)
      ~backup_execute:(Db.Kv.execute backup ~results:[| 0 |])
      ()
  in
  Pb.shutdown t;
  checki "nothing submitted" 0 (Pb.submitted t);
  checki "nothing applied" 0 (Pb.backup_applied t)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "replication"
    [
      ( "primary-backup",
        [
          tc "replicas converge" `Slow test_replicas_converge;
          tc "converge under contention" `Slow test_replicas_converge_under_contention;
          tc "replicated tpcc" `Slow test_replicated_tpcc;
          tc "empty shutdown" `Quick test_empty_shutdown;
        ] );
      ( "sequencer",
        [
          tc "orders concurrent clients" `Slow test_sequencer_orders_concurrent_clients;
          tc "log matches delivery" `Quick test_sequencer_log_matches_delivery;
          tc "crash recovery via replay" `Slow test_crash_recovery_via_log_replay;
        ] );
      ( "dst",
        [
          tc "converges under perturbation plans" `Slow test_pb_converges_under_fuzz;
          tc "replication case seed sweep" `Slow test_replication_case_seed_sweep;
          tc "replication case registered" `Quick test_replication_case_registered;
        ] );
    ]

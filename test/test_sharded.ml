(* Tests for the sharded runtime: the partition function, the
   cross-shard merge protocol, and the central shard-count-invariance
   property — for any shard count N, the final store digest, the
   per-request results, and the per-resource commit order are
   byte-identical to the N=1 (and serial) run. *)

module Core = Doradd_core
module Db = Doradd_db
module Rng = Doradd_stats.Rng
module Ycsb = Doradd_workload.Ycsb

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ------------------------------------------------------------------ *)
(* Partition function                                                  *)
(* ------------------------------------------------------------------ *)

let test_slot_pkey () =
  let s = Core.Slot.create ~pkey:42 () in
  checki "pkey stored" 42 (Core.Slot.pkey s);
  checki "shard = pkey mod n" 2 (Core.Slot.shard ~shards:4 s);
  checki "single shard collapses" 0 (Core.Slot.shard ~shards:1 s);
  (* pkey defaults to the slot id, which is at least unique *)
  let a = Core.Slot.create () and b = Core.Slot.create () in
  checkb "default pkeys distinct" true (Core.Slot.pkey a <> Core.Slot.pkey b)

let test_partition_stable_across_instances () =
  (* two stores populated with the same keys must agree on shard
     placement — the property slot ids (a global counter) do not have *)
  let mk () =
    let s = Db.Store.create () in
    Db.Store.populate s ~n:32;
    s
  in
  let s1 = mk () and s2 = mk () in
  for k = 0 to 31 do
    checki
      (Printf.sprintf "key %d same shard in both stores" k)
      (Core.Resource.shard ~shards:4 (Db.Store.find_exn s1 k))
      (Core.Resource.shard ~shards:4 (Db.Store.find_exn s2 k))
  done

let test_footprint_shards () =
  let slot pkey = Core.Slot.create ~pkey () in
  let fp =
    Core.Footprint.of_list
      [ (slot 0, Core.Footprint.Write); (slot 1, Core.Footprint.Write); (slot 5, Core.Footprint.Write) ]
  in
  (match Core.Footprint.touched_shards ~shards:4 fp with
  | [ 0; 1 ] -> ()
  | l ->
    Alcotest.failf "touched_shards: expected [0; 1], got [%s]"
      (String.concat "; " (List.map string_of_int l)));
  checkb "spans shards" true (Core.Footprint.spans ~shards:4 fp);
  checkb "does not span at 1" false (Core.Footprint.spans ~shards:1 fp);
  let r0 = Core.Footprint.restrict ~shards:4 ~shard:0 fp in
  let r1 = Core.Footprint.restrict ~shards:4 ~shard:1 fp in
  checki "shard 0 keeps pkey 0" 1 (Core.Footprint.length r0);
  checki "shard 1 keeps pkeys 1 and 5" 2 (Core.Footprint.length r1);
  checki "restrict to only shard is identity" (Core.Footprint.length fp)
    (Core.Footprint.length (Core.Footprint.restrict ~shards:1 ~shard:0 fp))

(* ------------------------------------------------------------------ *)
(* Cross-shard protocol on the raw runtime                             *)
(* ------------------------------------------------------------------ *)

let test_cross_body_executes_once () =
  let a = Core.Resource.create ~pkey:0 0 and b = Core.Resource.create ~pkey:1 0 in
  let n = 200 in
  let hits = Array.make n 0 in
  let rt = Core.Sharded_runtime.create ~shards:2 ~workers_per_shard:2 () in
  let fp =
    Core.Footprint.of_slots [ Core.Resource.slot a; Core.Resource.slot b ]
  in
  for i = 0 to n - 1 do
    Core.Sharded_runtime.schedule rt fp (fun () ->
        (* unsynchronised increment: only safe if the body runs exactly
           once, on exactly one shard, serialised by the footprint *)
        hits.(i) <- hits.(i) + 1;
        Core.Resource.set a (Core.Resource.get a + 1);
        Core.Resource.set b (Core.Resource.get b + 1))
  done;
  Core.Sharded_runtime.drain rt;
  Core.Sharded_runtime.shutdown rt;
  checki "every body ran exactly once" n (Array.fold_left ( + ) 0 hits);
  checkb "no double execution" true (Array.for_all (fun h -> h = 1) hits);
  checki "resource a" n (Core.Resource.peek a);
  checki "resource b" n (Core.Resource.peek b);
  checki "all scheduled cross-shard" n (Core.Sharded_runtime.cross rt)

(* PR 7's early arrivers re-parked with Node.Yield in a poll loop; they
   now suspend exactly once per wait (Effects.await on the barrier
   trigger).  With one worker per shard and shard 0 held busy by local
   txns, shard 1's participants genuinely arrive early — so suspensions
   must happen, at most one per early arriver, each matched by exactly
   one resume. *)
let test_early_arriver_suspends_once () =
  Core.Effects.reset_counters ();
  let a = Core.Resource.create ~pkey:0 0 and b = Core.Resource.create ~pkey:1 0 in
  let rt = Core.Sharded_runtime.create ~shards:2 ~workers_per_shard:1 () in
  let fa = Core.Footprint.of_slots [ Core.Resource.slot a ] in
  let fab = Core.Footprint.of_slots [ Core.Resource.slot a; Core.Resource.slot b ] in
  let n_local = 40 and n_cross = 50 in
  for _ = 1 to n_local do
    (* slow shard-0 locals: shard 1's cross participants overtake them *)
    Core.Sharded_runtime.schedule rt fa (fun () ->
        for _ = 1 to 2_000 do
          Domain.cpu_relax ()
        done;
        Core.Resource.update a succ)
  done;
  for _ = 1 to n_cross do
    Core.Sharded_runtime.schedule rt fab (fun () ->
        Core.Resource.update a succ;
        Core.Resource.update b succ)
  done;
  Core.Sharded_runtime.drain rt;
  Core.Sharded_runtime.shutdown rt;
  checki "all txns applied to a" (n_local + n_cross) (Core.Resource.peek a);
  checki "all cross txns applied to b" n_cross (Core.Resource.peek b);
  let s = Core.Effects.suspend_count () in
  checkb "early arrivers actually suspended" true (s >= 1);
  (* 2 shards: each cross txn has exactly one early arriver, and an early
     arriver suspends at most once — no re-park polling *)
  checkb "at most one suspension per cross txn" true (s <= n_cross);
  checki "every suspension resumed exactly once" s (Core.Effects.resume_count ())

let test_failure_recorded_by_stamp () =
  let a = Core.Resource.create ~pkey:0 0 in
  let rt = Core.Sharded_runtime.create ~shards:2 () in
  let fp = Core.Footprint.of_slots [ Core.Resource.slot a ] in
  Core.Sharded_runtime.schedule rt fp (fun () -> Core.Resource.set a 1);
  Core.Sharded_runtime.schedule rt fp (fun () -> failwith "boom");
  Core.Sharded_runtime.schedule rt fp (fun () -> Core.Resource.set a 3);
  Core.Sharded_runtime.drain rt;
  Core.Sharded_runtime.shutdown rt;
  (match Core.Sharded_runtime.failures rt with
  | [ (stamp, _) ] -> checki "failing stamp" 1 stamp
  | l -> Alcotest.failf "expected one failure, got %d" (List.length l));
  checki "later txns still ran" 3 (Core.Resource.peek a)

(* ------------------------------------------------------------------ *)
(* Shard-count invariance (the qcheck property)                        *)
(* ------------------------------------------------------------------ *)

let shard_counts = [ 1; 2; 4; 8 ]

(* random KV workload with an explicit cross-shard mix: some txns stay
   in one [key mod 8] bucket (single-shard at every N that divides 8),
   others mix buckets *)
let random_kv_txns ~seed ~n ~n_keys ~cross_pct =
  let rng = Rng.create (seed lxor 0x0073_6864) in
  Array.init n (fun id ->
      let ops = 1 + Rng.int rng 4 in
      let bucket = Rng.int rng 8 in
      Array.init ops (fun _ ->
          let key =
            if Rng.int rng 100 < cross_pct then Rng.int rng n_keys
            else (Rng.int rng (n_keys / 8) * 8) + bucket
          in
          { Db.Kv.key; kind = (if Rng.int rng 4 = 0 then Db.Kv.Read else Db.Kv.Update) })
      |> fun ops -> { Db.Kv.id; ops })

let check_invariance ?suspends_of ~what ~n_keys txns =
  let s_digest, s_results, s_order = Db.Sharded_kv.run_serial ~n_keys txns in
  List.for_all
    (fun shards ->
      let d, r, o =
        Db.Sharded_kv.run_sharded ?suspends_of ~workers_per_shard:2 ~shards ~n_keys txns
      in
      let ok = d = s_digest && r = s_results && o = s_order in
      if not ok then
        Printf.eprintf "%s: shards=%d digest %s results %s order %s\n%!" what shards
          (if d = s_digest then "ok" else "MISMATCH")
          (if r = s_results then "ok" else "MISMATCH")
          (if o = s_order then "ok" else "MISMATCH");
      ok)
    shard_counts

let prop_kv_invariance =
  QCheck.Test.make ~name:"sharded kv: digest+results+commit order invariant over N" ~count:12
    QCheck.(triple (int_range 1 1_000_000) (int_range 20 120) (int_range 0 60))
    (fun (seed, n, cross_pct) ->
      let n_keys = 64 in
      let txns = random_kv_txns ~seed ~n ~n_keys ~cross_pct in
      check_invariance ~what:"kv" ~n_keys txns)

(* the same invariance property with forced suspend points: every txn
   parks 0-3 times (seed-derived) while holding its footprint; all
   witnesses must stay byte-identical to the straight-line serial run *)
let prop_kv_invariance_suspended =
  QCheck.Test.make
    ~name:"sharded kv + forced suspends: digest+results+commit order invariant over N"
    ~count:8
    QCheck.(triple (int_range 1 1_000_000) (int_range 20 100) (int_range 0 60))
    (fun (seed, n, cross_pct) ->
      let n_keys = 64 in
      let txns = random_kv_txns ~seed ~n ~n_keys ~cross_pct in
      let suspends_of id = (id * 31) lxor seed land 3 in
      check_invariance ~suspends_of ~what:"kv+suspend" ~n_keys txns)

let prop_ycsb_invariance =
  QCheck.Test.make ~name:"sharded ycsb: digest+results+commit order invariant over N" ~count:6
    QCheck.(pair (int_range 1 1_000_000) (int_range 20 100))
    (fun (seed, n) ->
      let n_keys = 128 in
      let cfg =
        Ycsb.config ~n_keys ~ops_per_txn:6 ~hot_count:8 ~hot_stride:(n_keys / 8)
          Ycsb.Mod_contention
      in
      let txns =
        Array.map
          (fun (t : Ycsb.txn) ->
            {
              Db.Kv.id = t.id;
              ops =
                Array.map
                  (fun (o : Ycsb.op) ->
                    { Db.Kv.key = o.key; kind = (if o.is_write then Db.Kv.Update else Db.Kv.Read) })
                  t.ops;
            })
          (Ycsb.generate cfg (Rng.create seed) ~n)
      in
      check_invariance ~what:"ycsb" ~n_keys txns)

let tpcc_cfg = { Db.Tpcc_db.warehouses = 8; customers_per_district = 20; items = 40 }

let prop_tpcc_invariance =
  QCheck.Test.make ~name:"sharded tpcc-np: digest invariant over N (cross-warehouse orders)"
    ~count:5
    QCheck.(pair (int_range 1 1_000_000) (int_range 0 50))
    (fun (seed, remote_pct) ->
      let gen = Db.Tpcc_db.create tpcc_cfg in
      let txns = Db.Tpcc_db.generate ~remote_pct gen (Rng.create seed) ~n:300 in
      let reference = Db.Tpcc_db.create tpcc_cfg in
      Db.Tpcc_db.run_sequential reference txns;
      let expected = Db.Tpcc_db.digest reference in
      List.for_all
        (fun shards ->
          let db = Db.Tpcc_db.create tpcc_cfg in
          Db.Tpcc_db.run_sharded ~workers_per_shard:2 ~shards db txns;
          Db.Tpcc_db.digest db = expected)
        shard_counts)

let test_tpcc_remote_spans_shards () =
  let gen = Db.Tpcc_db.create tpcc_cfg in
  let txns = Db.Tpcc_db.generate ~remote_pct:100 gen (Rng.create 3) ~n:400 in
  let remote = Array.exists Db.Tpcc_db.is_remote txns in
  checkb "100% remote generates remote orders" true remote;
  (* a remote NewOrder's footprint must span shards under the
     warehouse-affine partition *)
  let spans =
    Array.exists
      (fun t ->
        Db.Tpcc_db.is_remote t
        && Core.Footprint.spans ~shards:tpcc_cfg.Db.Tpcc_db.warehouses
             (Db.Tpcc_db.footprint gen t))
      txns
  in
  checkb "remote order spans shards" true spans

(* shard counts that do not divide the bucket modulus still agree: the
   contract quantifies over every N, not just powers of two *)
let test_odd_shard_counts () =
  let n_keys = 48 in
  let txns = random_kv_txns ~seed:99 ~n:80 ~n_keys ~cross_pct:30 in
  let s_digest, s_results, s_order = Db.Sharded_kv.run_serial ~n_keys txns in
  List.iter
    (fun shards ->
      let d, r, o = Db.Sharded_kv.run_sharded ~shards ~n_keys txns in
      checki (Printf.sprintf "digest (%d shards)" shards) s_digest d;
      checkb (Printf.sprintf "results (%d shards)" shards) true (r = s_results);
      checkb (Printf.sprintf "order (%d shards)" shards) true (o = s_order))
    [ 3; 5; 7 ]

let () =
  Alcotest.run "sharded"
    [
      ( "partition",
        [
          Alcotest.test_case "slot pkey and shard" `Quick test_slot_pkey;
          Alcotest.test_case "stable across store instances" `Quick
            test_partition_stable_across_instances;
          Alcotest.test_case "footprint shard queries" `Quick test_footprint_shards;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "cross body executes once" `Quick test_cross_body_executes_once;
          Alcotest.test_case "early arriver suspends once" `Quick
            test_early_arriver_suspends_once;
          Alcotest.test_case "failures recorded by stamp" `Quick test_failure_recorded_by_stamp;
          Alcotest.test_case "remote tpcc order spans shards" `Quick
            test_tpcc_remote_spans_shards;
        ] );
      ( "invariance",
        [
          QCheck_alcotest.to_alcotest prop_kv_invariance;
          QCheck_alcotest.to_alcotest prop_kv_invariance_suspended;
          QCheck_alcotest.to_alcotest prop_ycsb_invariance;
          QCheck_alcotest.to_alcotest prop_tpcc_invariance;
          Alcotest.test_case "odd shard counts" `Quick test_odd_shard_counts;
        ] );
    ]

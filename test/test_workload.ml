(* Tests for the workload generators: YCSB (Table 1), TPCC-NP, and the
   synthetic workloads of Figures 2, 7 and 8. *)

module W = Doradd_workload
module Sim_req = Doradd_sim.Sim_req
module Rng = Doradd_stats.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ------------------------------------------------------------------ *)
(* YCSB                                                                *)
(* ------------------------------------------------------------------ *)

let is_hot cfg k = k mod cfg.W.Ycsb.hot_stride = 0 && k / cfg.W.Ycsb.hot_stride < cfg.W.Ycsb.hot_count

let test_ycsb_table1_configs () =
  let no = W.Ycsb.config W.Ycsb.No_contention in
  let mod_ = W.Ycsb.config W.Ycsb.Mod_contention in
  let high = W.Ycsb.config W.Ycsb.High_contention in
  Alcotest.check (Alcotest.pair Alcotest.int Alcotest.int) "no: 8r2w" (8, 2)
    (W.Ycsb.reads_and_writes no);
  Alcotest.check (Alcotest.pair Alcotest.int Alcotest.int) "mod: all writes" (0, 10)
    (W.Ycsb.reads_and_writes mod_);
  Alcotest.check (Alcotest.pair Alcotest.int Alcotest.int) "high: all writes" (0, 10)
    (W.Ycsb.reads_and_writes high);
  checki "no hot" 0 (W.Ycsb.hot_keys_per_txn no);
  checki "mod 3 hot" 3 (W.Ycsb.hot_keys_per_txn mod_);
  checki "high 7 hot" 7 (W.Ycsb.hot_keys_per_txn high);
  checki "10M keys" 10_000_000 no.W.Ycsb.n_keys;
  checki "77 hot rows" 77 no.W.Ycsb.hot_count;
  checki "2^17 stride" (1 lsl 17) no.W.Ycsb.hot_stride

let test_ycsb_keys_distinct () =
  let cfg = W.Ycsb.config W.Ycsb.High_contention in
  let txns = W.Ycsb.generate cfg (Rng.create 1) ~n:500 in
  Array.iter
    (fun t ->
      let keys = Array.map (fun o -> o.W.Ycsb.key) t.W.Ycsb.ops in
      let sorted = Array.copy keys in
      Array.sort compare sorted;
      let distinct = ref true in
      for i = 1 to Array.length sorted - 1 do
        if sorted.(i) = sorted.(i - 1) then distinct := false
      done;
      checkb "10 distinct keys" true !distinct;
      checki "10 ops" 10 (Array.length keys))
    txns

let test_ycsb_hot_key_count () =
  let cfg = W.Ycsb.config W.Ycsb.High_contention in
  let txns = W.Ycsb.generate cfg (Rng.create 2) ~n:500 in
  Array.iter
    (fun t ->
      let hot =
        Array.fold_left (fun acc o -> if is_hot cfg o.W.Ycsb.key then acc + 1 else acc) 0 t.W.Ycsb.ops
      in
      (* 7 drawn from the hot set; cold keys land on a hot row with
         negligible probability, so >= 7 and almost always exactly 7 *)
      checkb "at least 7 hot" true (hot >= 7))
    txns

let test_ycsb_no_contention_is_uniform () =
  let cfg = W.Ycsb.config W.Ycsb.No_contention in
  let txns = W.Ycsb.generate cfg (Rng.create 3) ~n:500 in
  let hot = ref 0 in
  Array.iter
    (fun t -> Array.iter (fun o -> if is_hot cfg o.W.Ycsb.key then incr hot) t.W.Ycsb.ops)
    txns;
  (* 5000 draws over 10M keys, 77 hot: expected hits ~0.04 *)
  checkb "no deliberate hot keys" true (!hot <= 2)

let test_ycsb_to_sim_all_write () =
  let cfg = W.Ycsb.config W.Ycsb.No_contention in
  let txns = W.Ycsb.generate cfg (Rng.create 4) ~n:100 in
  let sim = W.Ycsb.to_sim txns in
  Array.iter
    (fun r ->
      checki "one piece" 1 (Array.length r.Sim_req.pieces);
      let p = r.Sim_req.pieces.(0) in
      checki "all 10 as writes" 10 (Array.length p.Sim_req.writes);
      checki "no reads" 0 (Array.length p.Sim_req.reads))
    sim

let test_ycsb_to_sim_rw () =
  let cfg = W.Ycsb.config W.Ycsb.No_contention in
  let txns = W.Ycsb.generate cfg (Rng.create 4) ~n:100 in
  let sim = W.Ycsb.to_sim ~rw:true txns in
  Array.iter
    (fun r ->
      let p = r.Sim_req.pieces.(0) in
      checki "8 reads" 8 (Array.length p.Sim_req.reads);
      checki "2 writes" 2 (Array.length p.Sim_req.writes))
    sim

let test_ycsb_service_cost () =
  let cfg = W.Ycsb.config W.Ycsb.No_contention in
  let txns = W.Ycsb.generate cfg (Rng.create 5) ~n:10 in
  let cost = { W.Ycsb.base = 100; read = 10; write = 20 } in
  let sim = W.Ycsb.to_sim ~cost txns in
  Array.iter
    (fun r -> checki "base + 8r + 2w" (100 + (8 * 10) + (2 * 20)) (Sim_req.total_service r))
    sim

let test_ycsb_deterministic () =
  let cfg = W.Ycsb.config W.Ycsb.Mod_contention in
  let a = W.Ycsb.generate cfg (Rng.create 9) ~n:200 in
  let b = W.Ycsb.generate cfg (Rng.create 9) ~n:200 in
  checkb "same seed, same log" true (a = b)

(* ------------------------------------------------------------------ *)
(* TPCC                                                                *)
(* ------------------------------------------------------------------ *)

let test_tpcc_key_ranges_disjoint () =
  (* encodings must never collide across tables for realistic scales *)
  let w = 22 and d = 9 and c = 2_999 and i = 99_999 in
  let keys =
    [
      W.Tpcc.warehouse_key w;
      W.Tpcc.district_key ~w ~d;
      W.Tpcc.customer_key ~w ~d ~c;
      W.Tpcc.stock_key ~w ~i;
    ]
  in
  checki "all distinct" 4 (List.length (List.sort_uniq compare keys));
  checkb "warehouse < district base" true (W.Tpcc.warehouse_key w < 1_000);
  checkb "district < customer base" true (W.Tpcc.district_key ~w ~d < 100_000);
  checkb "customer < stock base" true (W.Tpcc.customer_key ~w ~d ~c < 10_000_000)

let test_tpcc_mix () =
  let txns = W.Tpcc.generate ~warehouses:4 (Rng.create 11) ~n:1_000 in
  let orders =
    Array.fold_left
      (fun acc t -> match t.W.Tpcc.kind with W.Tpcc.New_order -> acc + 1 | _ -> acc)
      0 txns
  in
  checki "equal mix" 500 orders

let test_tpcc_new_order_shape () =
  let txns = W.Tpcc.generate ~warehouses:2 (Rng.create 12) ~n:200 in
  Array.iter
    (fun t ->
      match t.W.Tpcc.kind with
      | W.Tpcc.New_order ->
        let ol = Array.length t.W.Tpcc.stock_keys in
        checkb "5..15 lines" true (ol >= 5 && ol <= 15);
        checki "order + new-order + per-line inserts" (2 + ol)
          (Array.length t.W.Tpcc.fresh_keys)
      | W.Tpcc.Payment ->
        checki "payment: history insert" 1 (Array.length t.W.Tpcc.fresh_keys);
        checki "no stock" 0 (Array.length t.W.Tpcc.stock_keys))
    txns

let test_tpcc_fresh_keys_unique () =
  let txns = W.Tpcc.generate ~warehouses:2 (Rng.create 13) ~n:500 in
  let seen = Hashtbl.create 1024 in
  Array.iter
    (fun t ->
      Array.iter
        (fun k ->
          checkb "fresh key unique" false (Hashtbl.mem seen k);
          Hashtbl.add seen k ())
        t.W.Tpcc.fresh_keys)
    txns

let test_tpcc_split_pieces () =
  let txns = W.Tpcc.generate ~warehouses:1 (Rng.create 14) ~n:100 in
  let plain = W.Tpcc.to_sim ~split:false txns in
  let split = W.Tpcc.to_sim ~split:true txns in
  Array.iter (fun r -> checki "unsplit: one piece" 1 (Array.length r.Sim_req.pieces)) plain;
  Array.iter
    (fun r ->
      checki "split: two pieces" 2 (Array.length r.Sim_req.pieces);
      (* warehouse key 0 only appears in the sub-piece *)
      let main = r.Sim_req.pieces.(0) and sub = r.Sim_req.pieces.(1) in
      let mem arr k = Array.exists (( = ) k) arr in
      checkb "main avoids warehouse" false
        (mem main.Sim_req.reads 0 || mem main.Sim_req.writes 0 || mem main.Sim_req.commutes 0);
      checkb "sub touches warehouse" true
        (mem sub.Sim_req.reads 0 || mem sub.Sim_req.writes 0 || mem sub.Sim_req.commutes 0))
    split;
  (* total service is preserved by splitting *)
  Array.iteri
    (fun idx r ->
      checki "service preserved" (Sim_req.total_service plain.(idx)) (Sim_req.total_service r))
    split

let test_tpcc_payment_commutes () =
  let txns = W.Tpcc.generate ~warehouses:1 (Rng.create 15) ~n:100 in
  let sim = W.Tpcc.to_sim ~split:false txns in
  Array.iteri
    (fun idx r ->
      match txns.(idx).W.Tpcc.kind with
      | W.Tpcc.Payment ->
        let p = r.Sim_req.pieces.(0) in
        (* warehouse ytd + district ytd are commutative *)
        checki "two commutative keys" 2 (Array.length p.Sim_req.commutes)
      | W.Tpcc.New_order -> ())
    sim

let test_tpcc_mean_service () =
  let txns = W.Tpcc.generate ~warehouses:4 (Rng.create 16) ~n:1_000 in
  let m = W.Tpcc.mean_service txns in
  (* equal mix of 4500 and 2500 *)
  checkb "mean ~3500" true (Float.abs (m -. 3_500.0) < 1.0)

let test_tpcc_validation () =
  Alcotest.check_raises "warehouses > 0"
    (Invalid_argument "Tpcc.generate: warehouses must be positive") (fun () ->
      ignore (W.Tpcc.generate ~warehouses:0 (Rng.create 1) ~n:1))

(* ------------------------------------------------------------------ *)
(* Synthetic                                                           *)
(* ------------------------------------------------------------------ *)

let test_synthetic_batches_share_hot_key () =
  let log = W.Synthetic.contended_batches ~batch_size:50 ~service:1_000 (Rng.create 31) ~n:500 in
  (* within a batch every request's first key equals the batch hot key *)
  for b = 0 to 9 do
    let hot = log.(b * 50).Sim_req.pieces.(0).Sim_req.writes.(0) in
    for i = 0 to 49 do
      checki "shares batch hot key" hot log.((b * 50) + i).Sim_req.pieces.(0).Sim_req.writes.(0)
    done
  done;
  (* different batches (almost surely) differ *)
  let h0 = log.(0).Sim_req.pieces.(0).Sim_req.writes.(0) in
  let h1 = log.(50).Sim_req.pieces.(0).Sim_req.writes.(0) in
  checkb "batches independent" true (h0 <> h1)

let test_synthetic_stragglers () =
  let log =
    W.Synthetic.stragglers ~batch_size:100 ~service:1_000 ~straggler_service:77_777
      (Rng.create 32) ~n:1_000
  in
  Array.iteri
    (fun i r ->
      let expect = if i mod 100 = 0 then 77_777 else 1_000 in
      checki "straggler placement" expect (Sim_req.total_service r))
    log

let test_synthetic_locks_sorted_distinct () =
  let log = W.Synthetic.locks ~service:5_000 (Rng.create 33) ~n:300 in
  Array.iter
    (fun r ->
      let keys = r.Sim_req.pieces.(0).Sim_req.writes in
      checki "10 locks" 10 (Array.length keys);
      for i = 1 to Array.length keys - 1 do
        checkb "sorted strictly" true (keys.(i) > keys.(i - 1))
      done)
    log

let test_synthetic_locks_zipf_skews () =
  let count_popular theta =
    let log = W.Synthetic.locks ~theta ~service:5_000 (Rng.create 34) ~n:3_000 in
    (* measure collision rate: how often the single most frequent key appears *)
    let tbl = Hashtbl.create 1024 in
    Array.iter
      (fun r ->
        Array.iter
          (fun k ->
            Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
          r.Sim_req.pieces.(0).Sim_req.writes)
      log;
    Hashtbl.fold (fun _ v acc -> max v acc) tbl 0
  in
  let uniform = count_popular 0.0 and skewed = count_popular 0.99 in
  checkb "zipf concentrates keys" true (skewed > 10 * max uniform 1)

(* ------------------------------------------------------------------ *)
(* Trace persistence                                                   *)
(* ------------------------------------------------------------------ *)

let tmpfile () = Filename.temp_file "doradd_trace" ".log"

let test_trace_roundtrip_ycsb () =
  let log = W.Ycsb.to_sim (W.Ycsb.generate (W.Ycsb.config W.Ycsb.Mod_contention) (Rng.create 41) ~n:500) in
  let path = tmpfile () in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
      W.Trace.save ~path log;
      let back = W.Trace.load ~path in
      checkb "round trip" true (back = log))

let test_trace_roundtrip_split_tpcc () =
  (* multi-piece requests with reads/writes/commutes *)
  let log = W.Tpcc.to_sim ~split:true (W.Tpcc.generate ~warehouses:2 (Rng.create 42) ~n:300) in
  let path = tmpfile () in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
      W.Trace.save ~path log;
      checkb "round trip" true (W.Trace.load ~path = log))

let test_trace_preserves_arrivals () =
  let log = W.Synthetic.locks ~service:5_000 (Rng.create 43) ~n:100 in
  Array.iteri (fun i r -> r.Sim_req.arrival <- i * 123) log;
  let path = tmpfile () in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
      W.Trace.save ~path log;
      let back = W.Trace.load ~path in
      Array.iteri (fun i r -> checki "arrival kept" (i * 123) r.Sim_req.arrival) back)

let test_trace_bad_file () =
  let path = tmpfile () in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
      let oc = open_out path in
      output_string oc "not a log";
      close_out oc;
      checkb "rejects garbage" true
        (match W.Trace.load ~path with exception Failure _ -> true | _ -> false));
  checkb "rejects missing file" true
    (match W.Trace.load ~path:"/nonexistent/doradd.log" with
    | exception Failure _ -> true
    | _ -> false)

(* The framed format must reject crash/corruption damage, not mis-parse
   it: a truncated tail (lost final record) and a single flipped payload
   byte (caught by the frame CRC) both fail loudly. *)
let test_trace_rejects_truncated_tail () =
  let log = W.Synthetic.locks ~service:5_000 (Rng.create 45) ~n:100 in
  let path = tmpfile () in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
      W.Trace.save ~path log;
      let full = In_channel.with_open_bin path In_channel.input_all in
      let oc = open_out_bin path in
      output_string oc (String.sub full 0 (String.length full - 5));
      close_out oc;
      checkb "rejects truncated tail" true
        (match W.Trace.load ~path with exception Failure _ -> true | _ -> false))

let test_trace_rejects_flipped_byte () =
  let log = W.Synthetic.locks ~service:5_000 (Rng.create 46) ~n:100 in
  let path = tmpfile () in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
      W.Trace.save ~path log;
      let full = Bytes.of_string (In_channel.with_open_bin path In_channel.input_all) in
      (* flip a byte well inside some record payload *)
      let pos = Bytes.length full / 2 in
      Bytes.set full pos (Char.chr (Char.code (Bytes.get full pos) lxor 0x40));
      let oc = open_out_bin path in
      output_bytes oc full;
      close_out oc;
      checkb "rejects flipped byte" true
        (match W.Trace.load ~path with exception Failure _ -> true | _ -> false))

(* Every workload kind bin/trace_tool.exe can generate: save -> load ->
   save again must be byte-identical (the on-disk format is canonical, so
   a re-serialized log is the same file). *)
let trace_tool_kinds =
  let rng seed = Rng.create seed in
  [
    ("ycsb-no", fun () -> W.Ycsb.to_sim (W.Ycsb.generate (W.Ycsb.config W.Ycsb.No_contention) (rng 51) ~n:400));
    ("ycsb-mod", fun () -> W.Ycsb.to_sim (W.Ycsb.generate (W.Ycsb.config W.Ycsb.Mod_contention) (rng 52) ~n:400));
    ("ycsb-high", fun () -> W.Ycsb.to_sim (W.Ycsb.generate (W.Ycsb.config W.Ycsb.High_contention) (rng 53) ~n:400));
    ("tpcc", fun () -> W.Tpcc.to_sim ~split:false (W.Tpcc.generate ~warehouses:2 (rng 54) ~n:300));
    ("tpcc-split", fun () -> W.Tpcc.to_sim ~split:true (W.Tpcc.generate ~warehouses:2 (rng 55) ~n:300));
    ("locks", fun () -> W.Synthetic.locks ~theta:0.99 ~service:5_000 (rng 56) ~n:400);
  ]

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_trace_reserialize_byte_identical () =
  List.iter
    (fun (kind, generate) ->
      let log = generate () in
      let first = tmpfile () and second = tmpfile () in
      Fun.protect
        ~finally:(fun () ->
          Sys.remove first;
          Sys.remove second)
        (fun () ->
          W.Trace.save ~path:first log;
          let back = W.Trace.load ~path:first in
          checkb (kind ^ ": values survive") true (back = log);
          W.Trace.save ~path:second back;
          checkb (kind ^ ": re-serialization byte-identical") true
            (read_file first = read_file second)))
    trace_tool_kinds

let test_trace_describe () =
  let log = W.Synthetic.locks ~service:5_000 (Rng.create 44) ~n:50 in
  let d = W.Trace.describe log in
  checkb "has request count" true (List.assoc "requests" d = "50");
  checkb "has mean keys" true (List.mem_assoc "mean keys/request" d)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "workload"
    [
      ( "ycsb",
        [
          tc "table 1 configs" `Quick test_ycsb_table1_configs;
          tc "keys distinct" `Quick test_ycsb_keys_distinct;
          tc "hot key count" `Quick test_ycsb_hot_key_count;
          tc "no-contention uniform" `Quick test_ycsb_no_contention_is_uniform;
          tc "to_sim all-write" `Quick test_ycsb_to_sim_all_write;
          tc "to_sim rw" `Quick test_ycsb_to_sim_rw;
          tc "service cost" `Quick test_ycsb_service_cost;
          tc "deterministic" `Quick test_ycsb_deterministic;
        ] );
      ( "tpcc",
        [
          tc "key ranges disjoint" `Quick test_tpcc_key_ranges_disjoint;
          tc "mix" `Quick test_tpcc_mix;
          tc "new-order shape" `Quick test_tpcc_new_order_shape;
          tc "fresh keys unique" `Quick test_tpcc_fresh_keys_unique;
          tc "split pieces" `Quick test_tpcc_split_pieces;
          tc "payment commutes" `Quick test_tpcc_payment_commutes;
          tc "mean service" `Quick test_tpcc_mean_service;
          tc "validation" `Quick test_tpcc_validation;
        ] );
      ( "synthetic",
        [
          tc "batches share hot key" `Quick test_synthetic_batches_share_hot_key;
          tc "stragglers" `Quick test_synthetic_stragglers;
          tc "locks sorted distinct" `Quick test_synthetic_locks_sorted_distinct;
          tc "locks zipf skews" `Quick test_synthetic_locks_zipf_skews;
        ] );
      ( "trace",
        [
          tc "roundtrip ycsb" `Quick test_trace_roundtrip_ycsb;
          tc "roundtrip split tpcc" `Quick test_trace_roundtrip_split_tpcc;
          tc "preserves arrivals" `Quick test_trace_preserves_arrivals;
          tc "re-serialize byte-identical (all kinds)" `Quick test_trace_reserialize_byte_identical;
          tc "bad file" `Quick test_trace_bad_file;
          tc "rejects truncated tail" `Quick test_trace_rejects_truncated_tail;
          tc "rejects flipped byte" `Quick test_trace_rejects_flipped_byte;
          tc "describe" `Quick test_trace_describe;
        ] );
    ]

(* Replication tests: protocol codec totality, the persistent epoch
   fence, the applied-watermark gate, segment-aware WAL tailing, the
   applier's fencing/density rules over a scripted socket, and live
   multi-node clusters — whose central claim is the failover win
   condition: at every kill point the surviving replica's state equals
   a serial replay of the acked durable prefix. *)

module Repl = Doradd_repl
module Proto = Repl.Protocol
module Net = Doradd_net
module Wire = Net.Wire
module Persist = Doradd_persist
module Wal = Persist.Wal
module Codec = Persist.Codec
module Rng = Doradd_stats.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_tmp_dir f =
  let dir = Filename.temp_dir "doradd_repl_test" "" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let random_msg rng =
  let wm () = Rng.int rng 1000 - 1 in
  match Rng.int rng 8 with
  | 0 ->
    Proto.Hello
      {
        h_epoch = Rng.int rng 1000;
        h_next = Rng.int rng 1000;
        h_last_epoch = Rng.int rng 1000;
        h_node = Rng.int rng 100;
      }
  | 1 -> Proto.Welcome { w_epoch = Rng.int rng 1000; w_next = Rng.int rng 1000 }
  | 2 ->
    Proto.Reject
      {
        r_epoch = Rng.int rng 1000;
        r_reason = [| Proto.Not_primary; Proto.Stale_epoch; Proto.Log_gap |].(Rng.int rng 3);
      }
  | 3 ->
    Proto.Entry
      {
        e_epoch = Rng.int rng 1000;
        e_seqno = Rng.int rng 100_000;
        e_origin = Rng.int rng 1000;
        e_body = String.init (Rng.int rng 48) (fun _ -> Char.chr (Rng.int rng 256));
      }
  | 4 -> Proto.Heartbeat { b_epoch = Rng.int rng 1000; b_commit = wm () }
  | 5 -> Proto.Ack { a_epoch = Rng.int rng 1000; a_durable = wm (); a_node = Rng.int rng 100 }
  | 6 ->
    Proto.Vote_req
      {
        v_term = Rng.int rng 1000;
        v_durable = wm ();
        v_last_epoch = Rng.int rng 1000;
        v_node = Rng.int rng 100;
      }
  | _ ->
    Proto.Vote
      {
        g_term = Rng.int rng 1000;
        g_granted = Rng.bool rng;
        g_epoch = Rng.int rng 1000;
        g_durable = wm ();
        g_node = Rng.int rng 100;
      }

let test_protocol_roundtrips () =
  let rng = Rng.create 11 in
  for _ = 1 to 400 do
    let m = random_msg rng in
    match Proto.decode (Proto.encode m) with
    | Ok m' -> checkb "roundtrip" true (m = m')
    | Error e -> Alcotest.fail e
  done

let prop_protocol_total =
  QCheck.Test.make ~name:"decode is total on hostile bytes" ~count:500
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun s ->
      (match Proto.decode s with Ok _ | Error _ -> true)
      (* truncations of valid encodings must never raise either *)
      &&
      let m = random_msg (Rng.create (Hashtbl.hash s)) in
      let e = Proto.encode m in
      List.for_all
        (fun k -> match Proto.decode (String.sub e 0 k) with Ok _ | Error _ -> true)
        (List.init (String.length e) Fun.id))

let test_candidate_geq () =
  checkb "higher durable wins" true
    (Proto.candidate_geq ~cand:(0, 5, 1) ~than:(0, 4, 9));
  checkb "lower durable loses" false
    (Proto.candidate_geq ~cand:(0, 3, 9) ~than:(0, 4, 1));
  checkb "tie breaks up" true (Proto.candidate_geq ~cand:(0, 4, 2) ~than:(0, 4, 1));
  checkb "tie equal id" true (Proto.candidate_geq ~cand:(0, 4, 1) ~than:(0, 4, 1));
  checkb "tie breaks down" false (Proto.candidate_geq ~cand:(0, 4, 1) ~than:(0, 4, 2));
  checkb "empty log loses" false (Proto.candidate_geq ~cand:(0, -1, 9) ~than:(0, 0, 0));
  (* Raft's up-to-date rule: last-entry epoch dominates log length — a
     longer log of uncommitted writes from a deposed primaryship loses
     to a shorter newer-epoch log. *)
  checkb "newer epoch beats longer log" true
    (Proto.candidate_geq ~cand:(3, 4, 1) ~than:(2, 90, 2));
  checkb "older epoch loses despite length" false
    (Proto.candidate_geq ~cand:(2, 90, 2) ~than:(3, 4, 1))

(* ------------------------------------------------------------------ *)
(* Epochs                                                              *)
(* ------------------------------------------------------------------ *)

let test_epochs () =
  with_tmp_dir @@ fun dir ->
  let dir = Filename.concat dir "node" in
  checki "no file" 0 (Repl.Epochs.load ~dir);
  Repl.Epochs.store ~dir 7;
  checki "store/load" 7 (Repl.Epochs.load ~dir);
  Repl.Epochs.store ~dir 9;
  checki "overwrite" 9 (Repl.Epochs.load ~dir);
  let oc = open_out (Filename.concat dir "EPOCH") in
  output_string oc "not a number";
  close_out oc;
  checkb "corrupt file refused" true
    (match Repl.Epochs.load ~dir with exception Failure _ -> true | _ -> false);
  checkb "negative refused" true
    (match Repl.Epochs.store ~dir (-1) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_voted_file () =
  with_tmp_dir @@ fun dir ->
  let dir = Filename.concat dir "node" in
  checki "never voted" 0 (Repl.Epochs.load_voted ~dir);
  Repl.Epochs.store_voted ~dir 3;
  checki "store/load" 3 (Repl.Epochs.load_voted ~dir);
  (* the epoch fence and the voted term are independent files *)
  Repl.Epochs.store ~dir 9;
  checki "epoch untouched by vote" 3 (Repl.Epochs.load_voted ~dir);
  checki "vote untouched by epoch" 9 (Repl.Epochs.load ~dir)

(* ------------------------------------------------------------------ *)
(* Elog: the epoch-run index                                           *)
(* ------------------------------------------------------------------ *)

let test_elog () =
  with_tmp_dir @@ fun dir ->
  let dir = Filename.concat dir "node" in
  let e = Repl.Elog.load ~dir in
  checki "empty log last epoch" 0 (Repl.Elog.last_epoch e ~next:0);
  checki "epoch-0 prefix" 0 (Repl.Elog.epoch_at e 42);
  Repl.Elog.note e ~epoch:2 ~first_seqno:10;
  Repl.Elog.note e ~epoch:4 ~first_seqno:17;
  checki "below first run" 0 (Repl.Elog.epoch_at e 9);
  checki "inside run 2" 2 (Repl.Elog.epoch_at e 12);
  checki "at run 4 start" 4 (Repl.Elog.epoch_at e 17);
  checki "last epoch" 4 (Repl.Elog.last_epoch e ~next:18);
  checki "run start" 17 (Repl.Elog.run_start e ~at:20);
  checki "run start mid" 10 (Repl.Elog.run_start e ~at:16);
  checki "run start prefix" 0 (Repl.Elog.run_start e ~at:4);
  (* persisted: a fresh load sees the same runs *)
  let e2 = Repl.Elog.load ~dir in
  checki "reload" 4 (Repl.Elog.epoch_at e2 17);
  (* the index never regresses on a lower epoch *)
  Repl.Elog.note e2 ~epoch:3 ~first_seqno:30;
  checki "no regress" 4 (Repl.Elog.last_epoch e2 ~next:31);
  (* a new run absorbs recorded runs it covers *)
  Repl.Elog.note e2 ~epoch:6 ~first_seqno:12;
  checki "new run covers" 6 (Repl.Elog.epoch_at e2 14);
  checki "and beyond" 6 (Repl.Elog.epoch_at e2 25);
  checki "prefix intact" 2 (Repl.Elog.epoch_at e2 11);
  (* truncation drops runs at or past the cut *)
  Repl.Elog.truncate e2 ~next:11;
  checki "run below the cut survives" 2 (Repl.Elog.epoch_at e2 10);
  checki "runs past the cut gone" 2 (Repl.Elog.epoch_at e2 30)

(* ------------------------------------------------------------------ *)
(* Feed.resume_point: hello reconciliation                             *)
(* ------------------------------------------------------------------ *)

let test_resume_point () =
  with_tmp_dir @@ fun dir ->
  let elog = Repl.Elog.load ~dir in
  Repl.Elog.note elog ~epoch:2 ~first_seqno:5;
  let rp = Repl.Feed.resume_point ~elog ~p_next:8 in
  checki "empty joiner starts at 0" 0 (rp ~h_next:0 ~h_last_epoch:0);
  checki "overlong joiner cut to our log" 8 (rp ~h_next:12 ~h_last_epoch:2);
  checki "matching epoch resumes in place" 7 (rp ~h_next:7 ~h_last_epoch:2);
  checki "matching epoch-0 prefix" 3 (rp ~h_next:3 ~h_last_epoch:0);
  checki "mismatch backs off to run start" 5 (rp ~h_next:7 ~h_last_epoch:1);
  checki "mismatch below the run backs to 0" 0 (rp ~h_next:4 ~h_last_epoch:1)

(* ------------------------------------------------------------------ *)
(* Wal.truncate_from                                                   *)
(* ------------------------------------------------------------------ *)

let test_wal_truncate_from () =
  with_tmp_dir @@ fun dir ->
  (* tiny segments so the cut crosses rotations *)
  let wal = Wal.open_ ~segment_bytes:128 ~fsync:false ~dir () in
  for i = 0 to 29 do
    ignore (Wal.append wal (Printf.sprintf "body-%04d" i))
  done;
  Wal.close wal;
  checki "dropped the suffix" 19 (Wal.truncate_from ~fsync:false ~dir ~from:11 ());
  let recs = (Wal.scan ~dir).Wal.records in
  checki "prefix kept" 11 (Array.length recs);
  Array.iteri
    (fun i (s, b) ->
      checki "seqno" i s;
      Alcotest.check Alcotest.string "body" (Printf.sprintf "body-%04d" i) b)
    recs;
  (* a reopened wal appends exactly at the cut *)
  let wal = Wal.open_ ~fsync:false ~dir () in
  checki "next after cut" 11 (Wal.next_seqno wal);
  ignore (Wal.append wal "fresh");
  Wal.close wal;
  checki "append continues" 12 (Array.length (Wal.scan ~dir).Wal.records);
  (* cutting at 0 empties the log but keeps its origin *)
  checki "drop all" 12 (Wal.truncate_from ~fsync:false ~dir ~from:0 ());
  checki "empty" 0 (Array.length (Wal.scan ~dir).Wal.records);
  let wal = Wal.open_ ~fsync:false ~dir () in
  checki "restarts at 0" 0 (Wal.next_seqno wal);
  Wal.close wal

(* ------------------------------------------------------------------ *)
(* Gate                                                                *)
(* ------------------------------------------------------------------ *)

let test_gate_contiguity () =
  let g = Repl.Gate.create ~applied:(-1) () in
  checki "empty" (-1) (Repl.Gate.applied g);
  Repl.Gate.complete g 2;
  Repl.Gate.complete g 1;
  checki "gap holds" (-1) (Repl.Gate.applied g);
  Repl.Gate.complete g 0;
  checki "prefix closes" 2 (Repl.Gate.applied g);
  Repl.Gate.complete g 1;
  checki "duplicate is fine" 2 (Repl.Gate.applied g);
  checkb "await below watermark immediate" true (Repl.Gate.await_blocking ~timeout_s:0.5 g 2);
  checkb "await beyond times out" false (Repl.Gate.await_blocking ~timeout_s:0.05 g 5);
  Repl.Gate.complete g 3;
  Repl.Gate.complete g 4;
  Repl.Gate.complete g 5;
  checkb "await after advance" true (Repl.Gate.await_blocking ~timeout_s:0.5 g 5)

(* ------------------------------------------------------------------ *)
(* Wal.tail_from = scan suffix                                         *)
(* ------------------------------------------------------------------ *)

let prop_tail_from =
  QCheck.Test.make ~name:"tail_from = scan filtered to [from, upto]" ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      with_tmp_dir @@ fun dir ->
      let rng = Rng.create (seed lxor 0x7a11) in
      (* tiny segments force rotations mid-range *)
      let wal = Wal.open_ ~segment_bytes:(64 + Rng.int rng 192) ~fsync:false ~dir () in
      let n = 1 + Rng.int rng 120 in
      for i = 0 to n - 1 do
        ignore
          (Wal.append wal
             (String.init (Rng.int rng 24) (fun k -> Char.chr ((i + k) land 0xff))));
        if Rng.int rng 4 = 0 then Wal.sync wal
      done;
      Wal.close wal;
      let all = (Wal.scan ~dir).Wal.records in
      let ok = ref true in
      for _ = 1 to 8 do
        let from = Rng.int rng (n + 4) - 2 in
        let upto =
          if Rng.bool rng then None else Some (from + Rng.int rng (n - from + 4))
        in
        let got = List.of_seq (Wal.tail_from ?upto ~dir ~from ()) in
        let want =
          Array.to_list all
          |> List.filter (fun (s, _) ->
                 s >= from && match upto with None -> true | Some u -> s <= u)
        in
        if got <> want then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Applier fencing and density over a scripted socket                  *)
(* ------------------------------------------------------------------ *)

(* Drive Applier.run on one end of a socketpair and play the primary by
   hand on the other: read its hello, answer welcome, then misbehave.
   [prefill] seeds the replica WAL before the session starts. *)
let with_scripted_applier ~epoch ?(prefill = []) ~script check_outcome =
  with_tmp_dir @@ fun dir ->
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let wal = Wal.open_ ~fsync:false ~dir () in
  List.iter (fun body -> ignore (Wal.append wal body)) prefill;
  if prefill <> [] then Wal.sync wal;
  let elog = Repl.Elog.load ~dir in
  let adopted = ref [] in
  let applied = ref [] in
  let outcome = ref None in
  let th =
    Thread.create
      (fun () ->
        outcome :=
          Some
            (Repl.Applier.run ~fd:a ~node_id:1 ~epoch
               ~on_epoch:(fun e -> adopted := e :: !adopted)
               ~wal ~elog
               ~apply:(fun ~seqno body -> applied := (seqno, body) :: !applied)
               ~on_heartbeat:(fun ~commit:_ -> ())
               ~serve_reads:(fun () -> ())
               ~election_timeout_s:5.0
               ~stopping:(fun () -> false)
               ()))
      ()
  in
  let reader = Net.Frame_reader.create () in
  let buf = Bytes.create 4096 in
  let rec read_frame () =
    match Net.Frame_reader.next reader with
    | `Frame f -> (
      match Proto.decode f with Ok m -> m | Error e -> Alcotest.fail e)
    | `Error e -> Alcotest.fail (Codec.error_to_string e)
    | `Need_more ->
      let k = Unix.read b buf 0 (Bytes.length buf) in
      if k = 0 then Alcotest.fail "applier closed early";
      Net.Frame_reader.feed reader buf ~pos:0 ~len:k;
      read_frame ()
  in
  let send m =
    let f = Codec.frame (Proto.encode m) in
    ignore (Unix.write_substring b f 0 (String.length f))
  in
  (match read_frame () with
  | Proto.Hello h ->
    checki "hello epoch" epoch h.Proto.h_epoch;
    checki "hello next" (List.length prefill) h.Proto.h_next
  | _ -> Alcotest.fail "expected hello");
  script ~send ~read_frame ~shutdown:(fun () -> Unix.shutdown b Unix.SHUTDOWN_ALL);
  Thread.join th;
  Unix.close b;
  Wal.close wal;
  check_outcome ~outcome:(Option.get !outcome) ~adopted:!adopted ~applied:!applied ~elog

let test_applier_fences_stale_epoch () =
  with_scripted_applier ~epoch:5
    ~script:(fun ~send ~read_frame ~shutdown:_ ->
      send (Proto.Welcome { w_epoch = 5; w_next = 0 });
      (* a deposed primary's frame: below our epoch *)
      send (Proto.Entry { e_epoch = 3; e_seqno = 0; e_origin = 3; e_body = "stale" });
      match read_frame () with
      | Proto.Reject { r_reason = Proto.Stale_epoch; r_epoch } ->
        checki "reject carries our fence" 5 r_epoch
      | _ -> Alcotest.fail "expected stale-epoch reject")
    (fun ~outcome ~adopted:_ ~applied ~elog:_ ->
      checkb "outcome" true (outcome = Repl.Applier.Stale_primary 3);
      checkb "nothing applied" true (applied = []))

let test_applier_adopts_higher_epoch () =
  with_scripted_applier ~epoch:2
    ~script:(fun ~send ~read_frame ~shutdown ->
      send (Proto.Welcome { w_epoch = 4; w_next = 0 });
      send (Proto.Entry { e_epoch = 4; e_seqno = 0; e_origin = 3; e_body = "fresh" });
      (match read_frame () with
      | Proto.Ack { a_durable; _ } -> checki "acked" 0 a_durable
      | _ -> Alcotest.fail "expected ack");
      shutdown ())
    (fun ~outcome ~adopted ~applied ~elog ->
      checkb "outcome" true (outcome = Repl.Applier.Disconnected);
      checkb "adopted the higher epoch" true (List.mem 4 adopted);
      checkb "applied the entry" true (applied = [ (0, "fresh") ]);
      (* the entry's origin epoch — not the shipping fence — lands in
         the run index, so this replica's next hello reports it *)
      checki "origin recorded" 3 (Repl.Elog.last_epoch elog ~next:1))

let test_applier_rejects_gap () =
  with_scripted_applier ~epoch:1
    ~script:(fun ~send ~read_frame:_ ~shutdown:_ ->
      send (Proto.Welcome { w_epoch = 1; w_next = 0 });
      (* density violation: seqno 3 when the wal expects 0 *)
      send (Proto.Entry { e_epoch = 1; e_seqno = 3; e_origin = 1; e_body = "gap" }))
    (fun ~outcome ~adopted:_ ~applied ~elog:_ ->
      checkb "outcome" true (outcome = Repl.Applier.Disconnected);
      checkb "nothing applied" true (applied = []))

let test_applier_truncate_on_low_welcome () =
  with_scripted_applier ~epoch:3 ~prefill:[ "a"; "b"; "c" ]
    ~script:(fun ~send ~read_frame:_ ~shutdown:_ ->
      (* the primary's log reconciliation resumes below our log end:
         our suffix [1, 2] diverges and must be cut *)
      send (Proto.Welcome { w_epoch = 3; w_next = 1 }))
    (fun ~outcome ~adopted:_ ~applied ~elog:_ ->
      checkb "outcome" true (outcome = Repl.Applier.Truncate 1);
      checkb "nothing applied" true (applied = []))

let test_applier_rejects_overlong_welcome () =
  with_scripted_applier ~epoch:1
    ~script:(fun ~send ~read_frame:_ ~shutdown:_ ->
      (* shipping from beyond our log end would leave a gap *)
      send (Proto.Welcome { w_epoch = 1; w_next = 5 }))
    (fun ~outcome ~adopted:_ ~applied ~elog:_ ->
      checkb "outcome" true (outcome = Repl.Applier.Disconnected);
      checkb "nothing applied" true (applied = []))

(* ------------------------------------------------------------------ *)
(* Feed: per-node ack aggregation                                      *)
(* ------------------------------------------------------------------ *)

(* Play two backups against a Feed by hand.  The commit watermark with
   [sync_replicas = 2] must be the 2nd-largest ack over distinct NODES:
   a backup that reconnects (leaving a dead conn with a frozen ack
   behind) must never count twice. *)
let test_feed_per_node_acks () =
  with_tmp_dir @@ fun dir ->
  let wal = Wal.open_ ~fsync:false ~dir () in
  for i = 0 to 10 do
    ignore (Wal.append wal (Printf.sprintf "w%d" i))
  done;
  Wal.sync wal;
  Wal.close wal;
  let elog = Repl.Elog.load ~dir in
  let commits = ref [] in
  let feed =
    Repl.Feed.create ~node_id:0 ~epoch:0 ~dir ~elog
      ~durable:(fun () -> 10)
      ~sync_replicas:2 ~heartbeat_s:10.0
      ~on_commit:(fun w -> commits := w :: !commits)
      ~on_fenced:(fun _ -> ())
      ()
  in
  let serve_backup ~node ~h_next =
    let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let th =
      Thread.create
        (fun () ->
          Repl.Feed.serve feed a ~reader:(Net.Frame_reader.create ())
            ~hello:{ Proto.h_epoch = 0; h_next; h_last_epoch = 0; h_node = node })
        ()
    in
    (b, th)
  in
  let ack fd ~node ~durable =
    let f =
      Codec.frame
        (Proto.encode (Proto.Ack { a_epoch = 0; a_durable = durable; a_node = node }))
    in
    ignore (Unix.write_substring fd f 0 (String.length f))
  in
  let wait_commit w =
    let deadline = Unix.gettimeofday () +. 5.0 in
    while Repl.Feed.commit feed < w && Unix.gettimeofday () < deadline do
      Unix.sleepf 0.002
    done
  in
  let b1, th1 = serve_backup ~node:1 ~h_next:0 in
  ack b1 ~node:1 ~durable:8;
  Unix.sleepf 0.1;
  checki "a single node cannot commit" (-1) (Repl.Feed.commit feed);
  (* node 1 reconnects, leaving its frozen ack 8 behind *)
  (try Unix.shutdown b1 Unix.SHUTDOWN_ALL with Unix.Unix_error (_, _, _) -> ());
  Thread.join th1;
  Unix.close b1;
  let b1', th1' = serve_backup ~node:1 ~h_next:9 in
  Unix.sleepf 0.1;
  checki "a reconnected node still counts once" (-1) (Repl.Feed.commit feed);
  (* node 2 joins and acks 5: the 2nd-largest per-NODE ack is 5 — with
     raw per-connection acks, node 1's two conns would fake a commit
     at 8 *)
  let b2, th2 = serve_backup ~node:2 ~h_next:0 in
  ack b2 ~node:2 ~durable:5;
  wait_commit 5;
  checki "commit = 2nd distinct node's ack" 5 (Repl.Feed.commit feed);
  ack b1' ~node:1 ~durable:10;
  Unix.sleepf 0.1;
  checki "still bounded by the slower node" 5 (Repl.Feed.commit feed);
  ack b2 ~node:2 ~durable:10;
  wait_commit 10;
  checki "full commit" 10 (Repl.Feed.commit feed);
  checkb "on_commit advanced monotonically" true
    (let l = List.rev !commits in
     List.sort compare l = l);
  Repl.Feed.stop feed;
  List.iter Thread.join [ th1'; th2 ];
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    [ b1'; b2 ]

(* ------------------------------------------------------------------ *)
(* Live clusters                                                       *)
(* ------------------------------------------------------------------ *)

let bind_listener () =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen fd 64;
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, p) -> (fd, p)
  | Unix.ADDR_UNIX _ -> assert false

let wait_port node =
  let deadline = Unix.gettimeofday () +. 10.0 in
  while Repl.Node.client_port node = 0 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.005
  done;
  let p = Repl.Node.client_port node in
  if p = 0 then Alcotest.fail "node never bound its client port";
  p

let kv_body rng =
  Wire.encode_kv
    {
      Wire.work = 0;
      ops =
        Array.init (1 + Rng.int rng 3) (fun _ ->
            { Wire.key = Rng.int rng 1024; update = Rng.bool rng });
    }

let make_backend () = Net.Backend.kv ~n_keys:1024 ()

let serial_digest bodies = fst (Net.Backend.replay_serial make_backend bodies)

(* A cluster of [n] nodes with pre-bound replication listeners so the
   peer topology is complete before any node starts.  Node 0 is the
   initial primary. *)
let start_cluster ?(sync_replicas = 1) ~dir n =
  let listeners = Array.init n (fun _ -> bind_listener ()) in
  let peers i =
    List.filter_map
      (fun j -> if j = i then None else Some (j, "127.0.0.1", snd listeners.(j)))
      (List.init n Fun.id)
  in
  Array.init n (fun i ->
      Repl.Node.start
        (Repl.Node.make_config ~node_id:i
           ~data_dir:(Filename.concat dir (Printf.sprintf "n%d" i))
           ~repl_fd:(fst listeners.(i))
           ?backup_of:(if i = 0 then None else Some ("127.0.0.1", snd listeners.(0)))
           ~peers:(peers i) ~fsync:false ~sync_replicas ~heartbeat_s:0.01
           ~election_timeout_s:0.2
           ~initial_role:(if i = 0 then `Primary else `Backup)
           ())
        make_backend)

let test_single_node_restart_exactly_once () =
  with_tmp_dir @@ fun dir ->
  let run_batch ~start k =
    let listeners = [| bind_listener () |] in
    let node =
      Repl.Node.start
        (Repl.Node.make_config ~node_id:0 ~data_dir:(Filename.concat dir "n0")
           ~repl_fd:(fst listeners.(0)) ~peers:[] ~fsync:false ~sync_replicas:0
           ~initial_role:`Primary ())
        make_backend
    in
    let c = Net.Client.connect ~port:(wait_port node) () in
    let rng = Rng.create (41 + start) in
    for i = 0 to k - 1 do
      let r = Net.Client.call c ~req_id:i ~body:(kv_body rng) in
      checki "status" Wire.status_ok r.Wire.status;
      (* stamps continue exactly where the previous incarnation stopped *)
      checki "stamp" (start + i) r.Wire.stamp
    done;
    Net.Client.close c;
    Repl.Node.stop node;
    node
  in
  let a = run_batch ~start:0 20 in
  let b = run_batch ~start:20 15 in
  let log = Repl.Node.wal_records b in
  checki "dense log across restart" 35 (Array.length log);
  Array.iteri (fun i (s, _) -> checki "seqno" i s) log;
  (* each entry applied exactly once: the restarted node's digest equals
     one serial replay of the full log *)
  checki "digest" (serial_digest (Array.map snd log)) (Repl.Node.digest b);
  ignore a

let test_two_node_replication_converges () =
  with_tmp_dir @@ fun dir ->
  let nodes = start_cluster ~dir 2 in
  let c = Net.Client.connect ~port:(wait_port nodes.(0)) () in
  let rng = Rng.create 99 in
  for i = 0 to 39 do
    let r = Net.Client.call c ~req_id:i ~body:(kv_body rng) in
    checki "status" Wire.status_ok r.Wire.status
  done;
  Net.Client.close c;
  Repl.Node.stop nodes.(0);
  Repl.Node.stop nodes.(1);
  let l0 = Repl.Node.wal_records nodes.(0) and l1 = Repl.Node.wal_records nodes.(1) in
  checkb "logs identical" true (l0 = l1);
  checki "all shipped" 40 (Array.length l1);
  let want = serial_digest (Array.map snd l0) in
  checki "primary digest" want (Repl.Node.digest nodes.(0));
  checki "backup digest" want (Repl.Node.digest nodes.(1))

(* The kill-point invariant: wherever the primary dies, every write the
   client saw acknowledged is in the surviving backup's log at its acked
   stamp, and the backup's state is a serial replay of its own log
   (a clean prefix of the primary's). *)
let test_kill_point_acked_prefix () =
  let rng = Rng.create 1234 in
  for _round = 1 to 3 do
    with_tmp_dir @@ fun dir ->
    let nodes = start_cluster ~dir 2 in
    let c = Net.Client.connect ~port:(wait_port nodes.(0)) () in
    let kill_at = 5 + Rng.int rng 20 in
    let acked = ref [] in
    (try
       for i = 0 to 29 do
         let body = kv_body rng in
         let r = Net.Client.call c ~req_id:i ~body in
         if r.Wire.status = Wire.status_ok then acked := (r.Wire.stamp, body) :: !acked;
         if List.length !acked = kill_at then Repl.Node.kill nodes.(0)
       done
     with _ -> ());
    Net.Client.close c;
    Repl.Node.stop nodes.(1);
    let backup_log = Repl.Node.wal_records nodes.(1) in
    let primary_log = Repl.Node.wal_records nodes.(0) in
    (* backup holds a clean prefix of the dead primary's durable log *)
    checkb "backup is a prefix" true
      (Array.length backup_log <= Array.length primary_log
      && Array.for_all
           (fun i -> backup_log.(i) = primary_log.(i))
           (Array.init (Array.length backup_log) Fun.id));
    (* every acked write is present at its acked stamp *)
    List.iter
      (fun (stamp, body) ->
        checkb "acked write survives" true
          (stamp < Array.length backup_log && snd backup_log.(stamp) = body))
      !acked;
    checki "backup state = serial replay of its log"
      (serial_digest (Array.map snd backup_log))
      (Repl.Node.digest nodes.(1))
  done

let test_stale_bounded_read () =
  with_tmp_dir @@ fun dir ->
  let nodes = start_cluster ~dir 2 in
  let c = Net.Client.connect ~port:(wait_port nodes.(0)) () in
  let rng = Rng.create 7 in
  let last = ref (-1) in
  for i = 0 to 24 do
    let r = Net.Client.call c ~req_id:i ~body:(kv_body rng) in
    checki "status" Wire.status_ok r.Wire.status;
    last := r.Wire.stamp
  done;
  Net.Client.close c;
  (* oracle: replay the primary's full log, then run the read at the
     position the replica will execute it at (log end, writes stopped) *)
  let bodies = Array.map snd (Repl.Node.wal_records nodes.(0)) in
  let oracle = make_backend () in
  Array.iteri
    (fun stamp body ->
      match oracle.Net.Backend.prepare ~stamp body with
      | Ok p -> ignore (p.Net.Backend.run ())
      | Error e -> Alcotest.fail e)
    bodies;
  let rc = Net.Client.connect ~port:(wait_port nodes.(1)) () in
  for i = 0 to 9 do
    let inner =
      Wire.encode_kv
        { Wire.work = 0; ops = [| { Wire.key = Rng.int rng 1024; update = false } |] }
    in
    let expect =
      match oracle.Net.Backend.prepare ~stamp:(Array.length bodies) inner with
      | Ok p -> p.Net.Backend.run ()
      | Error e -> Alcotest.fail e
    in
    let r =
      Net.Client.call rc ~req_id:i ~body:(Wire.encode_read ~min_stamp:!last ~body:inner)
    in
    checki "read status" Wire.status_ok r.Wire.status;
    checkb "staleness bound" true (r.Wire.stamp >= !last);
    checki "read result" expect r.Wire.result
  done;
  (* a write against the replica must bounce, not execute *)
  let r = Net.Client.call rc ~req_id:99 ~body:(kv_body rng) in
  checki "write bounced" Wire.status_not_primary r.Wire.status;
  Net.Client.close rc;
  Repl.Node.stop nodes.(0);
  Repl.Node.stop nodes.(1)

let test_failover_elects_and_converges () =
  with_tmp_dir @@ fun dir ->
  let nodes = start_cluster ~dir 3 in
  let addrs = Array.to_list (Array.map (fun n -> ("127.0.0.1", wait_port n)) nodes) in
  let session = Net.Client.Session.create ~req_timeout_s:0.5 ~addrs () in
  let rng = Rng.create 5 in
  let ok = ref 0 in
  for i = 0 to 39 do
    (match Net.Client.Session.call ~retry_budget_s:15.0 session ~req_id:i ~body:(kv_body rng) with
    | Ok r when r.Wire.status = Wire.status_ok -> incr ok
    | Ok _ | Error _ -> ());
    if i = 14 then Repl.Node.kill nodes.(0)
  done;
  Net.Client.Session.close session;
  checki "every write eventually acked" 40 !ok;
  let survivors = [ nodes.(1); nodes.(2) ] in
  checkb "someone took over" true
    (List.exists (fun n -> Repl.Node.role n = Repl.Node.Primary) survivors);
  checkb "epoch advanced" true (List.exists (fun n -> Repl.Node.epoch n > 0) survivors);
  List.iter Repl.Node.stop survivors;
  let logs = List.map Repl.Node.wal_records survivors in
  let digests = List.map Repl.Node.digest survivors in
  let primary_log =
    List.fold_left (fun a l -> if Array.length l > Array.length a then l else a) [||] logs
  in
  let want = serial_digest (Array.map snd primary_log) in
  List.iter (fun d -> checki "survivor digest = serial replay" want d) digests

(* An ex-primary rejoining after failover may hold a durable-but-unacked
   suffix the new primaryship never had; reconciliation must cut it,
   rebuild the replica, and converge its log and state to the new
   primary's. *)
let test_rejoin_converges () =
  with_tmp_dir @@ fun dir ->
  let nodes = start_cluster ~dir 3 in
  let addrs = Array.to_list (Array.map (fun n -> ("127.0.0.1", wait_port n)) nodes) in
  let session = Net.Client.Session.create ~req_timeout_s:0.5 ~addrs () in
  let rng = Rng.create 31 in
  let ok = ref 0 in
  for i = 0 to 29 do
    (match
       Net.Client.Session.call ~retry_budget_s:15.0 session ~req_id:i ~body:(kv_body rng)
     with
    | Ok r when r.Wire.status = Wire.status_ok -> incr ok
    | Ok _ | Error _ -> ());
    if i = 9 then Repl.Node.kill nodes.(0)
  done;
  Net.Client.Session.close session;
  checki "every write eventually acked" 30 !ok;
  let survivors = [ nodes.(1); nodes.(2) ] in
  let new_primary =
    match List.find_opt (fun n -> Repl.Node.role n = Repl.Node.Primary) survivors with
    | Some n -> n
    | None -> Alcotest.fail "no survivor took over"
  in
  let n0' =
    Repl.Node.start
      (Repl.Node.make_config ~node_id:0 ~data_dir:(Filename.concat dir "n0")
         ~backup_of:("127.0.0.1", Repl.Node.repl_port new_primary)
         ~peers:
           (List.map
              (fun n -> (Repl.Node.node_id n, "127.0.0.1", Repl.Node.repl_port n))
              survivors)
         ~fsync:false ~sync_replicas:1 ~heartbeat_s:0.01 ~election_timeout_s:1.0
         ~initial_role:`Backup ())
      make_backend
  in
  let target = Repl.Node.durable new_primary in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while
    (Repl.Node.durable n0' <> target
    || Repl.Node.epoch n0' < Repl.Node.epoch new_primary)
    && Unix.gettimeofday () < deadline
  do
    Unix.sleepf 0.01
  done;
  Repl.Node.stop n0';
  List.iter Repl.Node.stop survivors;
  let l0 = Repl.Node.wal_records n0' and lp = Repl.Node.wal_records new_primary in
  checkb "rejoined log equals the new primary's" true (l0 = lp);
  checki "rejoined digest = serial replay" (serial_digest (Array.map snd lp))
    (Repl.Node.digest n0')

(* ------------------------------------------------------------------ *)
(* Votes are durable                                                   *)
(* ------------------------------------------------------------------ *)

let vote_req node ~term ~cand =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Repl.Node.repl_port node));
  let f =
    Codec.frame
      (Proto.encode
         (Proto.Vote_req { v_term = term; v_durable = 100; v_last_epoch = 0; v_node = cand }))
  in
  ignore (Unix.write_substring fd f 0 (String.length f));
  let reader = Net.Frame_reader.create () in
  let buf = Bytes.create 1024 in
  let rec go () =
    match Net.Frame_reader.next reader with
    | `Frame p -> (
      match Proto.decode p with
      | Ok (Proto.Vote { g_granted; _ }) -> g_granted
      | Ok _ | Error _ -> Alcotest.fail "expected a vote reply")
    | `Error e -> Alcotest.fail (Codec.error_to_string e)
    | `Need_more ->
      let k = Unix.read fd buf 0 (Bytes.length buf) in
      if k = 0 then Alcotest.fail "vote socket closed";
      Net.Frame_reader.feed reader buf ~pos:0 ~len:k;
      go ()
  in
  let g = go () in
  Unix.close fd;
  g

let test_vote_survives_restart () =
  with_tmp_dir @@ fun dir ->
  (* a lone backup with an unreachable primary and an hour-long election
     timeout: it just sits there granting votes *)
  let mk () =
    Repl.Node.start
      (Repl.Node.make_config ~node_id:0 ~data_dir:(Filename.concat dir "n0")
         ~peers:[ (1, "127.0.0.1", 1) ] ~fsync:false ~sync_replicas:0
         ~election_timeout_s:3600.0 ~initial_role:`Backup ())
      make_backend
  in
  let n = mk () in
  checkb "first grant" true (vote_req n ~term:7 ~cand:1);
  checkb "same term refused" false (vote_req n ~term:7 ~cand:2);
  Repl.Node.stop n;
  (* a crash-restarted voter must not grant the same term again — that
     is how two primaries get seated *)
  let n = mk () in
  checkb "same term refused across restart" false (vote_req n ~term:7 ~cand:2);
  checkb "higher term granted" true (vote_req n ~term:8 ~cand:2);
  Repl.Node.stop n

(* ------------------------------------------------------------------ *)
(* Client session: reconnect and timeout                               *)
(* ------------------------------------------------------------------ *)

let test_session_reconnect_and_timeout () =
  (* a listener that never accepts: connects succeed, replies never come *)
  let black_hole, bh_port = bind_listener () in
  with_tmp_dir @@ fun dir ->
  let nodes = start_cluster ~dir 1 ~sync_replicas:0 in
  let live = wait_port nodes.(0) in
  let session =
    Net.Client.Session.create ~req_timeout_s:0.1
      ~addrs:[ ("127.0.0.1", bh_port); ("127.0.0.1", live) ]
      ()
  in
  let rng = Rng.create 3 in
  (match Net.Client.Session.call ~retry_budget_s:10.0 session ~req_id:0 ~body:(kv_body rng) with
  | Ok r -> checki "status" Wire.status_ok r.Wire.status
  | Error e -> Alcotest.fail e);
  let events = Net.Client.Session.events session in
  checkb "timed out on the black hole" true
    (List.exists (function `Timeout _ -> true | _ -> false) events);
  checkb "reconnected to the live node" true
    (List.exists (function `Reconnected (_, p) -> p = live | _ -> false) events);
  (* with every address dead, the budget bounds the call *)
  Repl.Node.kill nodes.(0);
  let t0 = Unix.gettimeofday () in
  (match Net.Client.Session.call ~retry_budget_s:0.5 session ~req_id:1 ~body:(kv_body rng) with
  | Ok _ -> Alcotest.fail "call succeeded against a dead cluster"
  | Error _ -> ());
  checkb "budget respected" true (Unix.gettimeofday () -. t0 < 5.0);
  Net.Client.Session.close session;
  Unix.close black_hole

let () =
  Alcotest.run "repl"
    [
      ( "protocol",
        [
          Alcotest.test_case "roundtrips" `Quick test_protocol_roundtrips;
          QCheck_alcotest.to_alcotest prop_protocol_total;
          Alcotest.test_case "election order" `Quick test_candidate_geq;
        ] );
      ( "epochs",
        [
          Alcotest.test_case "persist / corrupt / negative" `Quick test_epochs;
          Alcotest.test_case "voted term is its own file" `Quick test_voted_file;
        ] );
      ("elog", [ Alcotest.test_case "epoch-run index" `Quick test_elog ]);
      ( "gate",
        [ Alcotest.test_case "contiguity and await" `Quick test_gate_contiguity ] );
      ( "wal",
        [
          QCheck_alcotest.to_alcotest prop_tail_from;
          Alcotest.test_case "truncate_from" `Quick test_wal_truncate_from;
        ] );
      ( "feed",
        [
          Alcotest.test_case "resume point reconciliation" `Quick test_resume_point;
          Alcotest.test_case "acks aggregate per node" `Quick test_feed_per_node_acks;
        ] );
      ( "applier",
        [
          Alcotest.test_case "stale epoch is fenced" `Quick test_applier_fences_stale_epoch;
          Alcotest.test_case "higher epoch is adopted" `Quick
            test_applier_adopts_higher_epoch;
          Alcotest.test_case "seqno gap ends the session" `Quick test_applier_rejects_gap;
          Alcotest.test_case "low welcome means truncate" `Quick
            test_applier_truncate_on_low_welcome;
          Alcotest.test_case "overlong welcome is refused" `Quick
            test_applier_rejects_overlong_welcome;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "restart applies exactly once" `Quick
            test_single_node_restart_exactly_once;
          Alcotest.test_case "two nodes converge" `Quick test_two_node_replication_converges;
          Alcotest.test_case "acked prefix survives any kill point" `Quick
            test_kill_point_acked_prefix;
          Alcotest.test_case "stale-bounded replica reads" `Quick test_stale_bounded_read;
          Alcotest.test_case "failover elects and converges" `Quick
            test_failover_elects_and_converges;
          Alcotest.test_case "rejoined ex-primary converges" `Quick test_rejoin_converges;
          Alcotest.test_case "granted votes survive restart" `Quick
            test_vote_survives_restart;
        ] );
      ( "session",
        [
          Alcotest.test_case "reconnect, timeout, budget" `Quick
            test_session_reconnect_and_timeout;
        ] );
    ]

(* Integration tests for the real in-memory database (rows, store, KV
   transactions, TPC-C) on the real multicore runtime. *)

module Db = Doradd_db
module Rng = Doradd_stats.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ------------------------------------------------------------------ *)
(* Row                                                                 *)
(* ------------------------------------------------------------------ *)

let test_row_sizes () =
  checki "900-byte rows" 900 Db.Row.byte_size;
  checki "100-byte writes" 100 Db.Row.write_size

let test_row_deterministic_init () =
  let a = Db.Row.create ~key:7 and b = Db.Row.create ~key:7 in
  checki "same key same contents" (Db.Row.checksum a) (Db.Row.checksum b);
  let c = Db.Row.create ~key:8 in
  checkb "different key different contents" true (Db.Row.checksum a <> Db.Row.checksum c)

let test_row_write_changes_checksum () =
  let r = Db.Row.create ~key:1 in
  let before = Db.Row.checksum r in
  Db.Row.write r 42;
  checkb "write visible" true (Db.Row.checksum r <> before);
  let r2 = Db.Row.create ~key:1 in
  Db.Row.write r2 42;
  checki "writes deterministic" (Db.Row.checksum r) (Db.Row.checksum r2)

let test_row_key () =
  checki "key stored" 123 (Db.Row.key (Db.Row.create ~key:123))

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

let test_store_populate_find () =
  let s = Db.Store.create () in
  Db.Store.populate s ~n:100;
  checki "size" 100 (Db.Store.size s);
  checkb "find hit" true (Db.Store.find s 50 <> None);
  checkb "find miss" true (Db.Store.find s 100 = None);
  Alcotest.check_raises "find_exn miss" Not_found (fun () -> ignore (Db.Store.find_exn s 100))

(* ------------------------------------------------------------------ *)
(* KV transactions                                                     *)
(* ------------------------------------------------------------------ *)

let mk_txns ~seed ~n ~n_keys =
  let rng = Rng.create seed in
  Array.init n (fun id ->
      let ops =
        Array.init 5 (fun _ ->
            {
              Db.Kv.key = Rng.int rng n_keys;
              kind = (if Rng.bool rng then Db.Kv.Read else Db.Kv.Update);
            })
      in
      { Db.Kv.id; ops })

let test_kv_parallel_matches_serial () =
  let n_keys = 200 in
  let txns = mk_txns ~seed:1 ~n:4_000 ~n_keys in
  let ref_store = Db.Store.create () in
  Db.Store.populate ref_store ~n:n_keys;
  let expected = Db.Kv.run_sequential ref_store txns in
  let keys = Array.init n_keys Fun.id in
  let expected_state = Db.Kv.state_digest ref_store ~keys in
  List.iter
    (fun workers ->
      let store = Db.Store.create () in
      Db.Store.populate store ~n:n_keys;
      let got = Db.Kv.run_parallel ~workers store txns in
      Alcotest.check (Alcotest.array Alcotest.int)
        (Printf.sprintf "read digests (%d workers)" workers)
        expected got;
      checki
        (Printf.sprintf "state digest (%d workers)" workers)
        expected_state
        (Db.Kv.state_digest store ~keys))
    [ 1; 2; 4 ]

let test_kv_rw_mode_matches_serial () =
  let n_keys = 50 in
  let txns = mk_txns ~seed:2 ~n:3_000 ~n_keys in
  let ref_store = Db.Store.create () in
  Db.Store.populate ref_store ~n:n_keys;
  let expected = Db.Kv.run_sequential ref_store txns in
  let store = Db.Store.create () in
  Db.Store.populate store ~n:n_keys;
  let got = Db.Kv.run_parallel ~rw:true ~workers:4 store txns in
  Alcotest.check (Alcotest.array Alcotest.int) "rw mode deterministic" expected got

let test_kv_single_hot_key () =
  (* all txns update the same row: fully serial, digests must match *)
  let txns =
    Array.init 1_000 (fun id -> { Db.Kv.id; ops = [| { Db.Kv.key = 0; kind = Db.Kv.Update } |] })
  in
  let ref_store = Db.Store.create () in
  Db.Store.populate ref_store ~n:1;
  ignore (Db.Kv.run_sequential ref_store txns);
  let store = Db.Store.create () in
  Db.Store.populate store ~n:1;
  ignore (Db.Kv.run_parallel ~workers:4 store txns);
  checki "hot row state equal"
    (Db.Kv.state_digest ref_store ~keys:[| 0 |])
    (Db.Kv.state_digest store ~keys:[| 0 |])

(* ------------------------------------------------------------------ *)
(* TPC-C                                                               *)
(* ------------------------------------------------------------------ *)

let small_cfg = { Db.Tpcc_db.warehouses = 2; customers_per_district = 50; items = 500 }

let count_kinds txns =
  Array.fold_left
    (fun (o, p) -> function Db.Tpcc_db.New_order _ -> (o + 1, p) | Db.Tpcc_db.Payment _ -> (o, p + 1))
    (0, 0) txns

let test_tpcc_payment_semantics () =
  let db = Db.Tpcc_db.create small_cfg in
  Db.Tpcc_db.execute db
    (Db.Tpcc_db.Payment { p_w = 0; p_d = 3; p_c = 7; amount = 1_234 });
  checki "warehouse ytd" 1_234 (Db.Tpcc_db.warehouse_ytd db ~w:0);
  checki "district ytd" 1_234 (Db.Tpcc_db.district_ytd db ~w:0 ~d:3);
  checki "customer balance" (-1_234) (Db.Tpcc_db.customer_balance db ~w:0 ~d:3 ~c:7);
  checki "other warehouse untouched" 0 (Db.Tpcc_db.warehouse_ytd db ~w:1)

let test_tpcc_new_order_semantics () =
  let db = Db.Tpcc_db.create small_cfg in
  checki "initial next_o_id" 1 (Db.Tpcc_db.district_next_o_id db ~w:0 ~d:0);
  Db.Tpcc_db.execute db
    (Db.Tpcc_db.New_order { no_w = 0; no_d = 0; no_c = 0; lines = [| (0, 5, 3); (0, 9, 2) |] });
  checki "next_o_id bumped" 2 (Db.Tpcc_db.district_next_o_id db ~w:0 ~d:0);
  checki "order recorded" 1 (Db.Tpcc_db.district_order_count db ~w:0 ~d:0);
  checki "stock decremented" 97 (Db.Tpcc_db.stock_quantity db ~w:0 ~i:5);
  checki "stock ytd totals qty" 5 (Db.Tpcc_db.stock_ytd_total db)

let test_tpcc_stock_restock () =
  let db = Db.Tpcc_db.create small_cfg in
  (* order item 0 ten at a time until restock triggers: 100 -> ... -> <10+qty *)
  for _ = 1 to 12 do
    Db.Tpcc_db.execute db
      (Db.Tpcc_db.New_order { no_w = 0; no_d = 0; no_c = 0; lines = [| (0, 0, 10) |] })
  done;
  let q = Db.Tpcc_db.stock_quantity db ~w:0 ~i:0 in
  checkb "restocked (never below 0)" true (q > 0);
  checki "ytd counts all" 120 (Db.Tpcc_db.stock_ytd_total db)

let test_tpcc_parallel_matches_serial () =
  let gen = Db.Tpcc_db.create small_cfg in
  let txns = Db.Tpcc_db.generate gen (Rng.create 5) ~n:6_000 in
  let reference = Db.Tpcc_db.create small_cfg in
  Db.Tpcc_db.run_sequential reference txns;
  let expected = Db.Tpcc_db.digest reference in
  List.iter
    (fun workers ->
      let db = Db.Tpcc_db.create small_cfg in
      Db.Tpcc_db.run_parallel ~workers db txns;
      checki (Printf.sprintf "digest (%d workers)" workers) expected (Db.Tpcc_db.digest db))
    [ 1; 2; 4 ]

let test_tpcc_rw_matches_serial () =
  let gen = Db.Tpcc_db.create small_cfg in
  let txns = Db.Tpcc_db.generate gen (Rng.create 6) ~n:4_000 in
  let reference = Db.Tpcc_db.create small_cfg in
  Db.Tpcc_db.run_sequential reference txns;
  let db = Db.Tpcc_db.create small_cfg in
  Db.Tpcc_db.run_parallel ~rw:true ~workers:4 db txns;
  checki "rw digest" (Db.Tpcc_db.digest reference) (Db.Tpcc_db.digest db)

let test_tpcc_consistency_after_parallel () =
  let gen = Db.Tpcc_db.create small_cfg in
  let txns = Db.Tpcc_db.generate gen (Rng.create 7) ~n:6_000 in
  let orders, payments = count_kinds txns in
  let db = Db.Tpcc_db.create small_cfg in
  Db.Tpcc_db.run_parallel ~workers:4 db txns;
  (match Db.Tpcc_db.check_consistency db ~expected_payments:payments ~expected_orders:orders with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* warehouse ytd across warehouses equals total payment volume *)
  let total_ytd =
    Db.Tpcc_db.warehouse_ytd db ~w:0 + Db.Tpcc_db.warehouse_ytd db ~w:1
  in
  let expected_ytd =
    Array.fold_left
      (fun acc -> function Db.Tpcc_db.Payment p -> acc + p.Db.Tpcc_db.amount | _ -> acc)
      0 txns
  in
  checki "payment volume conserved" expected_ytd total_ytd

let test_tpcc_consistency_detects_violation () =
  let db = Db.Tpcc_db.create small_cfg in
  Db.Tpcc_db.execute db (Db.Tpcc_db.Payment { p_w = 0; p_d = 0; p_c = 0; amount = 10 });
  (* claim the wrong expected counts: must be reported *)
  match Db.Tpcc_db.check_consistency db ~expected_payments:5 ~expected_orders:0 with
  | Ok () -> Alcotest.fail "expected inconsistency"
  | Error _ -> ()

let test_tpcc_generate_bounds () =
  let db = Db.Tpcc_db.create small_cfg in
  let txns = Db.Tpcc_db.generate db (Rng.create 8) ~n:1_000 in
  Array.iter
    (fun t ->
      match t with
      | Db.Tpcc_db.New_order o ->
        checkb "warehouse in range" true (o.Db.Tpcc_db.no_w < small_cfg.Db.Tpcc_db.warehouses);
        Array.iter
          (fun (s, i, q) ->
            checkb "supply in range" true (s < small_cfg.Db.Tpcc_db.warehouses);
            checkb "item in range" true (i < small_cfg.Db.Tpcc_db.items);
            checkb "qty 1..10" true (q >= 1 && q <= 10))
          o.Db.Tpcc_db.lines
      | Db.Tpcc_db.Payment p ->
        checkb "customer in range" true
          (p.Db.Tpcc_db.p_c < small_cfg.Db.Tpcc_db.customers_per_district))
    txns

let test_tpcc_create_validation () =
  Alcotest.check_raises "bad config" (Invalid_argument "Tpcc_db.create") (fun () ->
      ignore (Db.Tpcc_db.create { Db.Tpcc_db.warehouses = 0; customers_per_district = 1; items = 1 }))

(* ------------------------------------------------------------------ *)
(* Ledger (smart-contract-style)                                       *)
(* ------------------------------------------------------------------ *)

let ledger_cfg = { Db.Ledger.accounts = 50; pools = 2 }

let test_ledger_transfer_semantics () =
  let l = Db.Ledger.create ledger_cfg in
  Db.Ledger.execute l (Db.Ledger.Transfer { src = 0; dst = 1; amount = 500 });
  checki "src debited" 9_500 (Db.Ledger.balance l 0);
  checki "dst credited" 10_500 (Db.Ledger.balance l 1);
  (* insufficient funds: deterministic no-op *)
  Db.Ledger.execute l (Db.Ledger.Transfer { src = 0; dst = 1; amount = 1_000_000 });
  checki "no-op on insufficient funds" 9_500 (Db.Ledger.balance l 0)

let test_ledger_mint_semantics () =
  let l = Db.Ledger.create ledger_cfg in
  let before = Db.Ledger.total_supply l in
  Db.Ledger.execute l (Db.Ledger.Mint { dst = 3; amount = 777 });
  checki "supply grows" (before + 777) (Db.Ledger.total_supply l);
  checki "account credited" (10_000 + 777) (Db.Ledger.balance l 3);
  checkb "conservation" true (Db.Ledger.circulating l = Db.Ledger.total_supply l)

let test_ledger_swap_semantics () =
  let l = Db.Ledger.create ledger_cfg in
  let _, _, k0 = Db.Ledger.pool_product l 0 in
  Db.Ledger.execute l (Db.Ledger.Swap { pool = 0; trader = 0; amount_in = 1_000; a_to_b = true });
  let ra, rb, k = Db.Ledger.pool_product l 0 in
  checkb "reserve A grew" true (ra > 1_000_000);
  checkb "reserve B shrank" true (rb < 1_000_000);
  checkb "product never shrinks (fee)" true (k >= k0);
  checkb "trader paid A" true (Db.Ledger.balance l 0 < 10_000)

let test_ledger_parallel_matches_serial () =
  let txns = Db.Ledger.generate (Db.Ledger.create ledger_cfg) (Rng.create 21) ~n:8_000 in
  let reference = Db.Ledger.create ledger_cfg in
  Db.Ledger.run_sequential reference txns;
  List.iter
    (fun workers ->
      let l = Db.Ledger.create ledger_cfg in
      Db.Ledger.run_parallel ~workers l txns;
      checki (Printf.sprintf "digest (%d workers)" workers) (Db.Ledger.digest reference)
        (Db.Ledger.digest l);
      match Db.Ledger.check_invariants l with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    [ 1; 2; 4 ]

let test_ledger_hot_pool_contention () =
  (* swaps only, single pool: maximum contention on one resource *)
  let cfg1 = { Db.Ledger.accounts = 20; pools = 1 } in
  let txns =
    Db.Ledger.generate ~transfer_pct:0 ~mint_pct:0 (Db.Ledger.create cfg1) (Rng.create 22)
      ~n:5_000
  in
  let reference = Db.Ledger.create cfg1 in
  Db.Ledger.run_sequential reference txns;
  let l = Db.Ledger.create cfg1 in
  Db.Ledger.run_parallel ~workers:4 l txns;
  checki "hot pool digest" (Db.Ledger.digest reference) (Db.Ledger.digest l)

let test_ledger_validation () =
  Alcotest.check_raises "bad config" (Invalid_argument "Ledger.create") (fun () ->
      ignore (Db.Ledger.create { Db.Ledger.accounts = 0; pools = 1 }));
  Alcotest.check_raises "bad mix" (Invalid_argument "Ledger.generate") (fun () ->
      ignore
        (Db.Ledger.generate ~transfer_pct:80 ~mint_pct:30 (Db.Ledger.create ledger_cfg)
           (Rng.create 1) ~n:1))

let prop_ledger_determinism =
  QCheck.Test.make ~name:"ledger parallel = serial for random logs" ~count:15
    QCheck.(pair (int_range 1 1_000_000) (int_range 2 4))
    (fun (seed, workers) ->
      let txns = Db.Ledger.generate (Db.Ledger.create ledger_cfg) (Rng.create seed) ~n:1_500 in
      let reference = Db.Ledger.create ledger_cfg in
      Db.Ledger.run_sequential reference txns;
      let l = Db.Ledger.create ledger_cfg in
      Db.Ledger.run_parallel ~workers l txns;
      Db.Ledger.digest reference = Db.Ledger.digest l
      && Db.Ledger.check_invariants l = Ok ())

(* qcheck: any short random txn list replayed in parallel matches serial *)
let prop_tpcc_determinism =
  QCheck.Test.make ~name:"tpcc parallel = serial for random logs" ~count:15
    QCheck.(pair (int_range 1 1_000_000) (int_range 2 4))
    (fun (seed, workers) ->
      let gen = Db.Tpcc_db.create small_cfg in
      let txns = Db.Tpcc_db.generate gen (Rng.create seed) ~n:800 in
      let reference = Db.Tpcc_db.create small_cfg in
      Db.Tpcc_db.run_sequential reference txns;
      let db = Db.Tpcc_db.create small_cfg in
      Db.Tpcc_db.run_parallel ~workers db txns;
      Db.Tpcc_db.digest reference = Db.Tpcc_db.digest db)

(* ------------------------------------------------------------------ *)
(* CRUD service                                                        *)
(* ------------------------------------------------------------------ *)

let test_crud_semantics () =
  let s = Db.Crud.create ~capacity:10 in
  let log =
    [|
      Db.Crud.Create { body = 7 };
      Db.Crud.Read { id = 0 };
      Db.Crud.Update { id = 0; body = 9 };
      Db.Crud.Read { id = 0 };
      Db.Crud.Delete { id = 0 };
      Db.Crud.Read { id = 0 };
      Db.Crud.Read { id = 5 };
      Db.Crud.Delete { id = 0 };
    |]
  in
  let r = Db.Crud.run_sequential s log in
  checkb "create -> id 0" true (r.(0) = Db.Crud.Ok_id 0);
  checkb "read body" true (r.(1) = Db.Crud.Ok_value 7);
  checkb "update ok" true (r.(2) = Db.Crud.Ok_unit);
  checkb "read updated" true (r.(3) = Db.Crud.Ok_value 9);
  checkb "delete ok" true (r.(4) = Db.Crud.Ok_unit);
  checkb "read after delete 404s" true (r.(5) = Db.Crud.Not_found_);
  checkb "never-created 404s" true (r.(6) = Db.Crud.Not_found_);
  checkb "double delete 404s" true (r.(7) = Db.Crud.Not_found_);
  checki "one id allocated" 1 (Db.Crud.next_id s);
  checki "nothing live" 0 (Db.Crud.live_documents s)

let test_crud_plan_assigns_dense_ids () =
  let s = Db.Crud.create ~capacity:100 in
  let log = Array.init 10 (fun i -> Db.Crud.Create { body = i }) in
  let planned = Db.Crud.plan s log in
  Array.iteri
    (fun i p -> checkb "dense ids in log order" true (Db.Crud.planned_id p = Some i))
    planned

let test_crud_plan_capacity () =
  let s = Db.Crud.create ~capacity:2 in
  Alcotest.check_raises "overflow" (Invalid_argument "Crud.plan: capacity exceeded") (fun () ->
      ignore (Db.Crud.plan s (Array.init 3 (fun i -> Db.Crud.Create { body = i }))))

let test_crud_parallel_matches_serial () =
  let capacity = 4_000 in
  let gen = Db.Crud.create ~capacity in
  let log = Db.Crud.generate gen (Rng.create 33) ~n:8_000 in
  let reference = Db.Crud.create ~capacity in
  let expected = Db.Crud.run_sequential reference log in
  List.iter
    (fun workers ->
      let s = Db.Crud.create ~capacity in
      let got = Db.Crud.run_parallel ~workers s log in
      checkb (Printf.sprintf "responses equal (%d workers)" workers) true (got = expected);
      checki "digest" (Db.Crud.digest reference) (Db.Crud.digest s);
      match Db.Crud.check_invariants s with Ok () -> () | Error e -> Alcotest.fail e)
    [ 1; 2; 4 ]

let test_crud_out_of_range_ids () =
  let s = Db.Crud.create ~capacity:4 in
  let r = Db.Crud.run_sequential s [| Db.Crud.Read { id = 999 }; Db.Crud.Delete { id = -3 } |] in
  checkb "oversized id 404s" true (r.(0) = Db.Crud.Not_found_);
  checkb "negative id 404s" true (r.(1) = Db.Crud.Not_found_)

let prop_crud_determinism =
  QCheck.Test.make ~name:"crud parallel = serial for random logs" ~count:15
    QCheck.(pair (int_range 1 1_000_000) (int_range 2 4))
    (fun (seed, workers) ->
      let capacity = 600 in
      let gen = Db.Crud.create ~capacity in
      let log = Db.Crud.generate gen (Rng.create seed) ~n:1_200 in
      let reference = Db.Crud.create ~capacity in
      let expected = Db.Crud.run_sequential reference log in
      let s = Db.Crud.create ~capacity in
      let got = Db.Crud.run_parallel ~workers s log in
      got = expected && Db.Crud.digest s = Db.Crud.digest reference
      && Db.Crud.check_invariants s = Ok ())

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "db"
    [
      ( "row",
        [
          tc "sizes" `Quick test_row_sizes;
          tc "deterministic init" `Quick test_row_deterministic_init;
          tc "write changes checksum" `Quick test_row_write_changes_checksum;
          tc "key" `Quick test_row_key;
        ] );
      ("store", [ tc "populate/find" `Quick test_store_populate_find ]);
      ( "kv",
        [
          tc "parallel = serial" `Slow test_kv_parallel_matches_serial;
          tc "rw mode" `Slow test_kv_rw_mode_matches_serial;
          tc "single hot key" `Slow test_kv_single_hot_key;
        ] );
      ( "tpcc",
        [
          tc "payment semantics" `Quick test_tpcc_payment_semantics;
          tc "new-order semantics" `Quick test_tpcc_new_order_semantics;
          tc "stock restock" `Quick test_tpcc_stock_restock;
          tc "parallel = serial" `Slow test_tpcc_parallel_matches_serial;
          tc "rw = serial" `Slow test_tpcc_rw_matches_serial;
          tc "consistency after parallel" `Slow test_tpcc_consistency_after_parallel;
          tc "consistency detects violation" `Quick test_tpcc_consistency_detects_violation;
          tc "generate bounds" `Quick test_tpcc_generate_bounds;
          tc "create validation" `Quick test_tpcc_create_validation;
          QCheck_alcotest.to_alcotest prop_tpcc_determinism;
        ] );
      ( "crud",
        [
          tc "semantics" `Quick test_crud_semantics;
          tc "plan dense ids" `Quick test_crud_plan_assigns_dense_ids;
          tc "plan capacity" `Quick test_crud_plan_capacity;
          tc "parallel = serial" `Slow test_crud_parallel_matches_serial;
          tc "out-of-range ids" `Quick test_crud_out_of_range_ids;
          QCheck_alcotest.to_alcotest prop_crud_determinism;
        ] );
      ( "ledger",
        [
          tc "transfer semantics" `Quick test_ledger_transfer_semantics;
          tc "mint semantics" `Quick test_ledger_mint_semantics;
          tc "swap semantics" `Quick test_ledger_swap_semantics;
          tc "parallel = serial" `Slow test_ledger_parallel_matches_serial;
          tc "hot pool contention" `Slow test_ledger_hot_pool_contention;
          tc "validation" `Quick test_ledger_validation;
          QCheck_alcotest.to_alcotest prop_ledger_determinism;
        ] );
    ]

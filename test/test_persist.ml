(* Durability subsystem tests: codec framing, segmented WAL, snapshots,
   recovery, the durable KV store, and the durable sequencer — plus the
   seeded crash matrix and a qcheck crash property, both checking the
   central claim: recovery reproduces exactly the durable-prefix state. *)

module P = Doradd_persist
module Codec = P.Codec
module Wal = P.Wal
module Cp = P.Crashpoint
module Shard_merge = P.Shard_merge
module Db = Doradd_db
module Rng = Doradd_stats.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let in_temp_dir f =
  let dir = Filename.temp_dir "doradd_test_persist" "" in
  Fun.protect ~finally:(fun () -> Cp.disarm (); rm_rf dir) (fun () -> f dir)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let test_crc32_vector () =
  (* the standard IEEE 802.3 check value *)
  checki "crc of '123456789'" 0xCBF43926 (Codec.crc32_string "123456789");
  checki "crc of empty" 0 (Codec.crc32_string "");
  checkb "incremental = one-shot" true
    (Codec.crc32_string ~init:(Codec.crc32_string "1234") "56789"
     = Codec.crc32_string "123456789")

let test_frame_roundtrip () =
  let payloads = [ ""; "x"; "hello world"; String.make 4096 '\xAB' ] in
  let buf = Buffer.create 64 in
  List.iter (fun p -> Codec.add_frame buf p) payloads;
  let s = Buffer.contents buf in
  checks "frame = add_frame" (String.concat "" (List.map Codec.frame payloads)) s;
  let got, clean_end, torn = Codec.fold s ~init:[] ~f:(fun acc p -> p :: acc) in
  checkb "all payloads back" true (List.rev got = payloads);
  checki "clean end is total" (String.length s) clean_end;
  checkb "no tear" true (torn = None)

let test_torn_and_corrupt () =
  let s = Codec.frame "first" ^ Codec.frame "second" in
  (* truncated mid-second-frame: first survives, tear reported *)
  let cut = String.sub s 0 (String.length s - 3) in
  let got, clean_end, torn = Codec.fold cut ~init:[] ~f:(fun acc p -> p :: acc) in
  checkb "first survives" true (got = [ "first" ]);
  checki "clean end after first" (Codec.header_bytes + 5) clean_end;
  checkb "tear is Truncated" true (torn = Some Codec.Truncated);
  (* flipped payload byte: CRC catches it *)
  let flipped = Bytes.of_string s in
  Bytes.set flipped (Codec.header_bytes + 2)
    (Char.chr (Char.code (Bytes.get flipped (Codec.header_bytes + 2)) lxor 1));
  let _, _, torn = Codec.fold (Bytes.to_string flipped) ~init:() ~f:(fun () _ -> ()) in
  checkb "flip detected" true (match torn with Some (Codec.Bad_crc _) -> true | _ -> false);
  (* absurd length field *)
  let bad_len = Bytes.of_string s in
  Bytes.set bad_len 3 '\xFF';
  let _, _, torn = Codec.fold (Bytes.to_string bad_len) ~init:() ~f:(fun () _ -> ()) in
  checkb "bad length detected" true
    (match torn with Some (Codec.Bad_length _) -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Wal                                                                 *)
(* ------------------------------------------------------------------ *)

let test_wal_append_reopen () =
  in_temp_dir @@ fun dir ->
  let w = Wal.open_ ~fsync:false ~dir () in
  for i = 0 to 49 do
    checki "dense seqnos" i (Wal.append w (Printf.sprintf "r%d" i))
  done;
  checki "nothing durable before sync" (-1) (Wal.durable_seqno w);
  checki "pending counts appends" 50 (Wal.pending w);
  Wal.sync w;
  checki "sync advances watermark" 49 (Wal.durable_seqno w);
  checki "pending drained" 0 (Wal.pending w);
  Wal.close w;
  let w = Wal.open_ ~fsync:false ~dir () in
  let info = Wal.open_info w in
  checki "reopen continues numbering" 50 info.next_seqno;
  checki "no truncation on clean reopen" 0 info.truncated_bytes;
  checki "next append continues" 50 (Wal.append w "r50");
  Wal.close w;
  let scan = Wal.scan ~dir in
  checki "all records scanned" 51 (Array.length scan.records);
  checkb "scan is dense and ordered" true
    (Array.for_all Fun.id
       (Array.mapi (fun i (s, d) -> s = i && d = Printf.sprintf "r%d" i) scan.records))

let test_wal_rotation () =
  in_temp_dir @@ fun dir ->
  let w = Wal.open_ ~segment_bytes:256 ~fsync:false ~dir () in
  for i = 0 to 99 do
    ignore (Wal.append w (Printf.sprintf "record-%04d" i))
  done;
  Wal.close w;
  let scan = Wal.scan ~dir in
  checkb "rotation created segments" true (scan.scanned_segments > 3);
  checki "no records lost across rotation" 100 (Array.length scan.records);
  (* segments chain: reopen still assigns the next seqno *)
  let w = Wal.open_ ~segment_bytes:256 ~fsync:false ~dir () in
  checki "next after many segments" 100 (Wal.next_seqno w);
  Wal.close w

let last_segment dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun n -> Filename.check_suffix n ".seg")
  |> List.sort compare |> List.rev |> List.hd |> Filename.concat dir

let test_wal_torn_tail_truncated () =
  in_temp_dir @@ fun dir ->
  let w = Wal.open_ ~fsync:false ~dir () in
  for i = 0 to 19 do
    ignore (Wal.append w (Printf.sprintf "r%d" i))
  done;
  Wal.close w;
  (* simulate a torn write: half a frame at the tail *)
  let seg = last_segment dir in
  let clean = read_file seg in
  write_file seg (clean ^ String.sub (Codec.frame "torn-record") 0 7);
  let scan = Wal.scan ~dir in
  checki "tear hides only the torn record" 20 (Array.length scan.records);
  checkb "tear reported" true (scan.torn <> None);
  let w = Wal.open_ ~fsync:false ~dir () in
  let info = Wal.open_info w in
  checki "torn bytes truncated" 7 info.truncated_bytes;
  checki "appends continue after repair" 20 (Wal.append w "fresh");
  Wal.close w;
  checks "file restored to clean prefix + new record" (clean ^ Codec.frame "\x14\x00\x00\x00\x00\x00\x00\x00fresh")
    (read_file seg)

let test_wal_interior_corruption_refused () =
  in_temp_dir @@ fun dir ->
  let w = Wal.open_ ~segment_bytes:256 ~fsync:false ~dir () in
  for i = 0 to 49 do
    ignore (Wal.append w (Printf.sprintf "payload-%04d" i))
  done;
  Wal.close w;
  (* a bad frame is only provably corruption (vs a torn tail) when valid
     data follows it — flip a byte in the OLDEST segment of several *)
  let seg =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun n -> Filename.check_suffix n ".seg")
    |> List.sort compare |> List.hd |> Filename.concat dir
  in
  let content = Bytes.of_string (read_file seg) in
  let pos = Bytes.length content / 2 in
  Bytes.set content pos (Char.chr (Char.code (Bytes.get content pos) lxor 0x10));
  write_file seg (Bytes.to_string content);
  checkb "scan refuses interior corruption" true
    (match Wal.scan ~dir with exception Failure _ -> true | _ -> false);
  checkb "open refuses interior corruption" true
    (match Wal.open_ ~fsync:false ~dir () with exception Failure _ -> true | _ -> false)

let test_wal_crash_close_loses_unsynced () =
  in_temp_dir @@ fun dir ->
  let w = Wal.open_ ~fsync:false ~dir () in
  for i = 0 to 9 do
    ignore (Wal.append w (Printf.sprintf "a%d" i))
  done;
  Wal.sync w;
  for i = 10 to 14 do
    ignore (Wal.append w (Printf.sprintf "b%d" i))
  done;
  (* 10..14 never synced: a crash must lose exactly these *)
  Wal.crash_close w;
  let scan = Wal.scan ~dir in
  checki "synced prefix survives" 10 (Array.length scan.records);
  checkb "no tear (clean batch boundary)" true (scan.torn = None)

let test_wal_prune () =
  in_temp_dir @@ fun dir ->
  let w = Wal.open_ ~segment_bytes:256 ~fsync:false ~dir () in
  for i = 0 to 99 do
    ignore (Wal.append w (Printf.sprintf "record-%04d" i))
  done;
  Wal.close w;
  let before = (Wal.scan ~dir).scanned_segments in
  let removed = Wal.prune ~dir ~before:50 in
  checkb "pruned some segments" true (removed > 0);
  let scan = Wal.scan ~dir in
  checki "segments reduced by prune" (before - removed) scan.scanned_segments;
  let oldest, _ = scan.records.(0) in
  checkb "only covered segments removed" true (oldest <= 50);
  (* the tail is intact and the log still opens *)
  let last, _ = scan.records.(Array.length scan.records - 1) in
  checki "newest record kept" 99 last;
  let w = Wal.open_ ~segment_bytes:256 ~fsync:false ~dir () in
  checki "numbering unaffected" 100 (Wal.next_seqno w);
  Wal.close w

(* ------------------------------------------------------------------ *)
(* Snapshot                                                            *)
(* ------------------------------------------------------------------ *)

let test_snapshot_roundtrip_latest () =
  in_temp_dir @@ fun dir ->
  ignore (P.Snapshot.write ~dir ~watermark:10 "ten");
  ignore (P.Snapshot.write ~dir ~watermark:30 "thirty");
  ignore (P.Snapshot.write ~dir ~watermark:20 "twenty");
  match P.Snapshot.load_latest ~dir with
  | None -> Alcotest.fail "no snapshot loaded"
  | Some l ->
    checki "highest watermark wins" 30 l.watermark;
    checks "payload intact" "thirty" l.data

let test_snapshot_skips_corrupt_and_tmp () =
  in_temp_dir @@ fun dir ->
  let keep = P.Snapshot.write ~dir ~watermark:5 "good" in
  let newer = P.Snapshot.write ~dir ~watermark:9 "newer" in
  (* corrupt the newest; loader must fall back to the older valid one *)
  let c = Bytes.of_string (read_file newer) in
  Bytes.set c (Bytes.length c - 2) '\x00';
  write_file newer (Bytes.to_string c);
  (* and a leftover temp file from a crashed write must be ignored *)
  write_file (Filename.concat dir "snap-0000000000000099.snap.tmp") "half-written";
  (match P.Snapshot.load_latest ~dir with
  | None -> Alcotest.fail "no snapshot loaded"
  | Some l ->
    checki "fell back to valid snapshot" 5 l.watermark;
    checks "valid payload" "good" l.data;
    checks "path is the valid file" keep l.path);
  (* prune removes the corrupt one (invalid => not kept) and the tmp *)
  ignore (P.Snapshot.prune ~dir ~keep:1);
  checkb "tmp removed by prune" true
    (not (Sys.file_exists (Filename.concat dir "snap-0000000000000099.snap.tmp")))

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

let test_recovery_snapshot_plus_suffix () =
  in_temp_dir @@ fun dir ->
  let w = Wal.open_ ~fsync:false ~dir () in
  for i = 0 to 29 do
    ignore (Wal.append w (Printf.sprintf "r%d" i))
  done;
  Wal.close w;
  ignore (P.Snapshot.write ~dir ~watermark:12 "state@12");
  let installed = ref None in
  let replayed = ref [] in
  let stats =
    P.Recovery.recover ~dir
      ~install:(fun ~watermark data -> installed := Some (watermark, data))
      ~replay:(fun ~seqno data -> replayed := (seqno, data) :: !replayed)
      ()
  in
  checkb "snapshot installed" true (!installed = Some (12, "state@12"));
  checki "replays suffix only" 18 stats.replayed;
  checki "skips covered prefix" 12 stats.skipped;
  checkb "replay starts at watermark" true (List.rev !replayed |> List.hd = (12, "r12"));
  (* without install, the whole log replays *)
  let stats = P.Recovery.recover ~dir ~replay:(fun ~seqno:_ _ -> ()) () in
  checki "full replay without snapshots" 30 stats.replayed

let test_recovery_gap_refused () =
  in_temp_dir @@ fun dir ->
  let w = Wal.open_ ~segment_bytes:256 ~fsync:false ~dir () in
  for i = 0 to 99 do
    ignore (Wal.append w (Printf.sprintf "record-%04d" i))
  done;
  Wal.close w;
  ignore (Wal.prune ~dir ~before:50);
  (* log now starts past 0 and there is no snapshot covering the hole *)
  checkb "gap refused" true
    (match P.Recovery.recover ~dir ~install:(fun ~watermark:_ _ -> ()) ~replay:(fun ~seqno:_ _ -> ()) () with
    | exception Failure _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Durable KV store                                                    *)
(* ------------------------------------------------------------------ *)

let n_keys = 64

let gen_txns ~seed ~n =
  let rng = Rng.create seed in
  Array.init n (fun id ->
      let ops =
        Array.init 4 (fun _ ->
            {
              Db.Kv.key = Rng.int rng n_keys;
              kind = (if Rng.bool rng then Db.Kv.Read else Db.Kv.Update);
            })
      in
      { Db.Kv.id; ops })

let serial_prefix txns r =
  let s = Db.Store.create () in
  Db.Store.populate s ~n:n_keys;
  let results = Db.Kv.run_sequential s (Array.sub txns 0 r) in
  (Db.Kv.state_digest s ~keys:(Array.init n_keys Fun.id), results)

let test_txn_codec_roundtrip () =
  let txns = gen_txns ~seed:11 ~n:50 in
  Array.iter
    (fun txn ->
      checkb "kv txn roundtrip" true (Db.Durable_kv.decode_txn (Db.Durable_kv.encode_txn txn) = txn))
    txns;
  checkb "kv rejects garbage" true
    (match Db.Durable_kv.decode_txn "nonsense" with exception Failure _ -> true | _ -> false);
  (* tpcc wire format too *)
  let db = Db.Tpcc_db.create { warehouses = 2; customers_per_district = 30; items = 200 } in
  Array.iter
    (fun txn ->
      checkb "tpcc txn roundtrip" true
        (Db.Durable_tpcc.decode_txn (Db.Durable_tpcc.encode_txn txn) = txn))
    (Db.Tpcc_db.generate db (Rng.create 12) ~n:50)

let test_durable_kv_cycle () =
  in_temp_dir @@ fun dir ->
  let txns = gen_txns ~seed:21 ~n:150 in
  let kv = Db.Durable_kv.open_ ~dir ~n_keys ~max_txns:200 ~workers:2 ~group_commit:8 ~segment_bytes:2048 ~fsync:false () in
  Array.iteri
    (fun i txn ->
      checki "submit returns seqno = id" i (Db.Durable_kv.submit kv txn);
      if i = 70 then checki "snapshot covers submissions" 71 (Db.Durable_kv.snapshot kv))
    txns;
  Db.Durable_kv.quiesce kv;
  checki "all durable after quiesce" 150 (Db.Durable_kv.durable kv);
  let d1 = Db.Durable_kv.state_digest kv in
  let r1 = Array.copy (Db.Durable_kv.results kv) in
  Db.Durable_kv.close kv;
  let expected_digest, expected_results = serial_prefix txns 150 in
  checkb "parallel durable run matches serial" true (d1 = expected_digest);
  checkb "results match serial" true (Array.sub r1 0 150 = expected_results);
  (* reopen: recovery must reproduce the state *)
  let kv2 = Db.Durable_kv.open_ ~dir ~n_keys ~max_txns:200 ~workers:2 ~fsync:false () in
  Db.Durable_kv.quiesce kv2;
  checki "recovered everything" 150 (Db.Durable_kv.recovered kv2);
  checkb "used the snapshot" true
    ((Db.Durable_kv.recovery_stats kv2).snapshot_watermark = Some 71);
  checkb "recovered state identical" true (Db.Durable_kv.state_digest kv2 = d1);
  (* and it keeps going: submit more on the recovered instance *)
  let more = gen_txns ~seed:22 ~n:200 in
  for i = 150 to 199 do
    ignore (Db.Durable_kv.submit kv2 { (more.(i)) with id = i })
  done;
  Db.Durable_kv.quiesce kv2;
  checki "continues numbering" 200 (Db.Durable_kv.submitted kv2);
  Db.Durable_kv.close kv2

let test_durable_kv_crash_loses_only_unsynced () =
  in_temp_dir @@ fun dir ->
  let txns = gen_txns ~seed:31 ~n:100 in
  let kv = Db.Durable_kv.open_ ~dir ~n_keys ~max_txns:100 ~group_commit:16 ~fsync:false () in
  Array.iter (fun txn -> ignore (Db.Durable_kv.submit kv txn)) txns;
  (* 100 = 6*16 + 4: the last 4 are appended but not group-committed *)
  let acked = Db.Durable_kv.durable kv in
  checki "unsynced tail not acknowledged" 96 acked;
  Db.Durable_kv.crash_close kv;
  let kv2 = Db.Durable_kv.open_ ~dir ~n_keys ~max_txns:100 ~fsync:false () in
  Db.Durable_kv.quiesce kv2;
  checki "exactly the durable prefix recovered" 96 (Db.Durable_kv.recovered kv2);
  let expected_digest, _ = serial_prefix txns 96 in
  checkb "recovered state = serial prefix" true (Db.Durable_kv.state_digest kv2 = expected_digest);
  Db.Durable_kv.close kv2

(* ---- seeded crash matrix: >= 20 deterministic kill/recover cycles --- *)

(* One kill/recover/verify cycle on the durable KV store; returns what
   the oracle needs.  [fsync:false]: the crashpoints and buffer/watermark
   machinery are identical, only the physical flush is skipped (check.exe
   --recovery covers the real-fsync path). *)
let crash_cycle ~seed ~n ~point ~nth ~group_commit ~cadence ~segment_bytes =
  in_temp_dir @@ fun dir ->
  let txns = gen_txns ~seed ~n in
  let open_kv () =
    Db.Durable_kv.open_ ~dir ~n_keys ~max_txns:n ~group_commit ~segment_bytes ~fsync:false ()
  in
  let kv = open_kv () in
  let countdown = ref nth in
  Cp.arm (fun p ->
      if p = point then begin
        decr countdown;
        !countdown <= 0
      end
      else false);
  let crashed =
    try
      Array.iteri
        (fun i txn ->
          ignore (Db.Durable_kv.submit kv txn);
          if cadence > 0 && i > 0 && i mod cadence = 0 then ignore (Db.Durable_kv.snapshot kv))
        txns;
      false
    with Cp.Crashed _ -> true
  in
  Cp.disarm ();
  let acked = Db.Durable_kv.durable kv in
  let submitted = Db.Durable_kv.submitted kv in
  Db.Durable_kv.crash_close kv;
  let kv2 = open_kv () in
  Db.Durable_kv.quiesce kv2;
  let recovered = Db.Durable_kv.recovered kv2 in
  let digest = Db.Durable_kv.state_digest kv2 in
  Db.Durable_kv.close kv2;
  let expected_digest, _ = serial_prefix txns recovered in
  (crashed, acked, submitted, recovered, digest = expected_digest)

let matrix_points = [ Cp.Pre_fsync; Cp.Mid_append; Cp.Mid_rotation; Cp.Mid_snapshot ]

let test_crash_matrix () =
  (* 4 crash-point classes x 3 group-commit sizes x 2 snapshot cadences =
     24 seeded kills, each verified against the serial oracle *)
  let combo = ref 0 in
  List.iter
    (fun point ->
      List.iter
        (fun group_commit ->
          List.iter
            (fun cadence ->
              incr combo;
              let name =
                Printf.sprintf "%s gc=%d cad=%d" (Cp.to_string point) group_commit cadence
              in
              let crashed, acked, submitted, recovered, digest_ok =
                crash_cycle ~seed:(1000 + !combo) ~n:120 ~point ~nth:(1 + (!combo mod 4))
                  ~group_commit ~cadence ~segment_bytes:256
              in
              checkb (name ^ ": crash point reached") true crashed;
              checkb (name ^ ": no acknowledged request lost") true (recovered >= acked);
              checkb (name ^ ": nothing beyond the log") true (recovered <= submitted);
              checkb (name ^ ": recovered = serial durable prefix") true digest_ok)
            [ 8; 16 ])
        [ 1; 2; 4 ])
    matrix_points;
  checkb "matrix is >= 20 cycles" true (!combo >= 20)

(* ---- qcheck: random workload x crash point x cadence ---------------- *)

let prop_crash_recovery =
  let all_points = Array.of_list Cp.points in
  QCheck.Test.make ~name:"recovery = serial replay of durable prefix (random crashes)"
    ~count:40
    QCheck.(
      quad (int_range 0 10_000) (int_range 0 (Array.length all_points - 1)) (int_range 1 10)
        (int_range 0 3))
    (fun (seed, point_idx, nth, cadence_idx) ->
      let point = all_points.(point_idx) in
      let cadence =
        (* snapshot-window points only fire if snapshots happen *)
        match point with
        | Cp.Mid_snapshot | Cp.Pre_snapshot_rename -> [| 8; 16; 24; 32 |].(cadence_idx)
        | _ -> [| 0; 8; 16; 32 |].(cadence_idx)
      in
      let crashed, acked, submitted, recovered, digest_ok =
        crash_cycle ~seed ~n:100 ~point ~nth ~group_commit:(1 + (seed mod 8)) ~cadence
          ~segment_bytes:(256 + (seed mod 512))
      in
      (* some parameter draws never reach the crash point; the cycle then
         degenerates to clean close + clean recovery, which must also
         verify *)
      ignore crashed;
      recovered >= acked && recovered <= submitted && digest_ok)

(* ------------------------------------------------------------------ *)
(* Durable sequencer                                                   *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Sharded WALs: stamp merge + crash recovery                          *)
(* ------------------------------------------------------------------ *)

let test_shard_merge_unit () =
  (* stamped-record framing *)
  let payload = Shard_merge.encode_stamped 7 "hello" in
  checkb "stamped roundtrip" true (Shard_merge.decode_stamped payload = (7, "hello"));
  checkb "short stamped rejected" true
    (match Shard_merge.decode_stamped "abc" with exception Failure _ -> true | _ -> false);
  (* sharded txn wire format *)
  Array.iter
    (fun txn ->
      checkb "sharded kv txn roundtrip" true
        (Db.Sharded_durable_kv.decode_txn (Db.Sharded_durable_kv.encode_txn txn) = txn))
    (gen_txns ~seed:51 ~n:40);
  (* merge: cross-shard records are duplicated; byte-equal copies dedup *)
  let r stamp data = (stamp, data) in
  let prefix, stats =
    Shard_merge.merge [| [| r 0 "a"; r 1 "b" |]; [| r 1 "b"; r 2 "c" |] |]
  in
  checkb "contiguous prefix" true (prefix = [| "a"; "b"; "c" |]);
  checki "watermark" 2 stats.Shard_merge.watermark;
  checki "duplicates counted" 1 stats.Shard_merge.duplicates;
  checki "no mismatches" 0 stats.Shard_merge.mismatches;
  (* a gap stops the watermark; stamps beyond it are dropped *)
  let prefix, stats = Shard_merge.merge [| [| r 0 "a"; r 2 "c" |]; [| r 3 "d" |] |] in
  checkb "prefix stops at gap" true (prefix = [| "a" |]);
  checki "gap watermark" 0 stats.Shard_merge.watermark;
  checki "dropped beyond gap" 2 stats.Shard_merge.dropped;
  (* divergent copies of one stamp are mismatches *)
  let _, stats = Shard_merge.merge [| [| r 0 "a" |]; [| r 0 "X" |] |] in
  checki "mismatch counted" 1 stats.Shard_merge.mismatches;
  (* empty logs recover to nothing *)
  let prefix, stats = Shard_merge.merge [| [||]; [||] |] in
  checkb "empty merge" true (prefix = [||] && stats.Shard_merge.watermark = -1)

let sharded_open ~dir ~shards () =
  Db.Sharded_durable_kv.open_ ~dir ~shards ~workers_per_shard:1 ~group_commit:4
    ~segment_bytes:512 ~fsync:false ~n_keys ~max_txns:400 ()

let test_sharded_kv_cycle () =
  in_temp_dir @@ fun dir ->
  let n = 120 in
  let txns = gen_txns ~seed:31 ~n in
  let kv = sharded_open ~dir ~shards:3 () in
  Array.iter (Db.Sharded_durable_kv.submit kv) txns;
  Db.Sharded_durable_kv.quiesce kv;
  let digest, results = serial_prefix txns n in
  checki "digest after sharded run" digest (Db.Sharded_durable_kv.state_digest kv);
  checki "all acked" n (Db.Sharded_durable_kv.acked kv);
  Db.Sharded_durable_kv.close kv;
  (* clean reopen: every shard log replays, merged back to serial order *)
  let kv2 = sharded_open ~dir ~shards:3 () in
  checki "recovered all" n (Db.Sharded_durable_kv.recovered kv2);
  checki "digest after recovery" digest (Db.Sharded_durable_kv.state_digest kv2);
  checkb "results replayed" true
    (Array.sub (Db.Sharded_durable_kv.results kv2) 0 n = results);
  checki "merge saw no mismatches" 0
    (Db.Sharded_durable_kv.merge_stats kv2).Doradd_persist.Shard_merge.mismatches;
  Db.Sharded_durable_kv.close kv2

(* Seeded crashpoints while cross-shard transactions are being logged to
   several WALs: recovery must merge all N logs and land exactly on the
   serial durable prefix — nothing acked lost, no torn or gapped suffix
   applied — and the resumed run must still reach full-serial state. *)
let test_sharded_crash_recovery () =
  let shards = 4 and n = 140 in
  List.iteri
    (fun i (point, nth) ->
      in_temp_dir @@ fun dir ->
      let txns = gen_txns ~seed:(61 + i) ~n in
      let kv = sharded_open ~dir ~shards () in
      let countdown = ref nth in
      Cp.arm (fun p ->
          if p = point then begin
            decr countdown;
            !countdown <= 0
          end
          else false);
      let crashed =
        match Array.iter (Db.Sharded_durable_kv.submit kv) txns with
        | () -> false
        | exception Cp.Crashed _ -> true
      in
      Cp.disarm ();
      checkb "crashpoint fired" true crashed;
      let acked0 = Db.Sharded_durable_kv.acked kv in
      Db.Sharded_durable_kv.crash_close kv;
      let kv2 = sharded_open ~dir ~shards () in
      let r = Db.Sharded_durable_kv.recovered kv2 in
      checkb "nothing acked lost" true (r >= acked0);
      checkb "nothing invented" true (r <= n);
      let d_prefix, res_prefix = serial_prefix txns r in
      checki "recovered state = serial durable prefix" d_prefix
        (Db.Sharded_durable_kv.state_digest kv2);
      checkb "recovered results = serial prefix" true
        (Array.sub (Db.Sharded_durable_kv.results kv2) 0 r = res_prefix);
      (* resume the rest of the log; stamps re-issue from the watermark *)
      for j = r to n - 1 do
        Db.Sharded_durable_kv.submit kv2 txns.(j)
      done;
      Db.Sharded_durable_kv.quiesce kv2;
      let d_full, res_full = serial_prefix txns n in
      checki "resumed state = full serial" d_full (Db.Sharded_durable_kv.state_digest kv2);
      checkb "resumed results = full serial" true
        (Array.sub (Db.Sharded_durable_kv.results kv2) 0 n = res_full);
      Db.Sharded_durable_kv.close kv2;
      (* and the post-resume logs themselves recover *)
      let kv3 = sharded_open ~dir ~shards () in
      checki "third open recovers everything" n (Db.Sharded_durable_kv.recovered kv3);
      checki "third open digest" d_full (Db.Sharded_durable_kv.state_digest kv3);
      Db.Sharded_durable_kv.close kv3)
    [ (Cp.Mid_append, 37); (Cp.Pre_fsync, 9); (Cp.Post_fsync, 14) ]

let test_sequencer_durable () =
  in_temp_dir @@ fun dir ->
  let module Seq = Doradd_replication.Sequencer in
  let wal = Wal.open_ ~fsync:false ~dir () in
  let n = 500 in
  let delivered = Array.make n (-1) in
  let t =
    Seq.create
      ~durability:{ Seq.wal; encode = string_of_int }
      ~deliver:(fun ~seqno req ->
        (* append-before-deliver: every delivery must already be durable *)
        assert (Wal.durable_seqno wal >= seqno);
        delivered.(seqno) <- req)
      ()
  in
  (* accessors are safe while running *)
  checkb "log_prefix safe before stop" true (Array.length (Seq.log_prefix t) <= n);
  checkb "log still guarded before stop" true
    (match Seq.log t with exception Invalid_argument _ -> true | _ -> false);
  for i = 0 to n - 1 do
    Seq.submit t (i * 7)
  done;
  Seq.stop t;
  checki "watermark covers everything" (n - 1) (Seq.durable_watermark t);
  checkb "deliveries in order, durable first" true
    (Array.for_all Fun.id (Array.mapi (fun i v -> v = i * 7) delivered));
  checkb "log matches deliveries" true (Seq.log t = Array.init n (fun i -> i * 7));
  Wal.close wal;
  (* the WAL holds the same total order, decodable for replay *)
  let scan = Wal.scan ~dir in
  checki "wal record per request" n (Array.length scan.records);
  checkb "wal order = delivery order" true
    (Array.for_all Fun.id
       (Array.mapi (fun i (s, d) -> s = i && int_of_string d = i * 7) scan.records))

let test_sequencer_nondurable_unchanged () =
  let module Seq = Doradd_replication.Sequencer in
  let acc = ref [] in
  let t = Seq.create ~deliver:(fun ~seqno req -> acc := (seqno, req) :: !acc) () in
  checki "no wal, no watermark" (-1) (Seq.durable_watermark t);
  for i = 0 to 99 do
    Seq.submit t i
  done;
  Seq.stop t;
  checki "all delivered" 100 (Seq.delivered t);
  checkb "log unchanged semantics" true (Seq.log t = Array.init 100 Fun.id)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "persist"
    [
      ( "codec",
        [
          tc "crc32 vectors" `Quick test_crc32_vector;
          tc "frame roundtrip" `Quick test_frame_roundtrip;
          tc "torn and corrupt frames" `Quick test_torn_and_corrupt;
        ] );
      ( "wal",
        [
          tc "append, sync, reopen" `Quick test_wal_append_reopen;
          tc "segment rotation" `Quick test_wal_rotation;
          tc "torn tail truncated on open" `Quick test_wal_torn_tail_truncated;
          tc "interior corruption refused" `Quick test_wal_interior_corruption_refused;
          tc "crash_close loses only unsynced" `Quick test_wal_crash_close_loses_unsynced;
          tc "prune covered segments" `Quick test_wal_prune;
        ] );
      ( "snapshot",
        [
          tc "roundtrip + latest wins" `Quick test_snapshot_roundtrip_latest;
          tc "skips corrupt and tmp files" `Quick test_snapshot_skips_corrupt_and_tmp;
        ] );
      ( "recovery",
        [
          tc "snapshot + wal suffix" `Quick test_recovery_snapshot_plus_suffix;
          tc "gap refused" `Quick test_recovery_gap_refused;
        ] );
      ( "durable-kv",
        [
          tc "txn wire formats roundtrip" `Quick test_txn_codec_roundtrip;
          tc "submit/snapshot/recover cycle" `Quick test_durable_kv_cycle;
          tc "crash loses only unsynced tail" `Quick test_durable_kv_crash_loses_only_unsynced;
        ] );
      ( "crash-matrix",
        [
          tc "24 seeded kills across all point classes" `Slow test_crash_matrix;
          QCheck_alcotest.to_alcotest prop_crash_recovery;
        ] );
      ( "sharded-wal",
        [
          tc "shard merge: stamps, dedup, gaps" `Quick test_shard_merge_unit;
          tc "sharded submit/recover cycle" `Quick test_sharded_kv_cycle;
          tc "crash mid cross-shard commit" `Slow test_sharded_crash_recovery;
        ] );
      ( "sequencer",
        [
          tc "durable mode: append before deliver" `Quick test_sequencer_durable;
          tc "non-durable mode unchanged" `Quick test_sequencer_nondurable_unchanged;
        ] );
    ]

(* Tests for the lib/chk model checker itself.

   The checker is the layer we trust to find interleaving bugs in the
   lock-free kernel, so it gets its own correctness net:
   - every registry scenario explores clean at a small bound;
   - both planted-bug twins are FOUND, and the shrunk counterexample
     replays to the same violation (the checker's canary);
   - DPOR is cross-validated against brute-force full enumeration: same
     set of reachable final-state digests, never more executions — on
     the real scenarios, on a handcrafted fully-independent program
     (where the reduction must be strict), and on qcheck-random 2-3
     process micro-programs over 1-2 shared atomics. *)

module Chk = Doradd_chk
module Engine = Chk.Engine
module Scenarios = Chk.Scenarios
module Tatomic = Chk.Tatomic

let explore_digests ?mode prog =
  let tbl = Hashtbl.create 64 in
  let r = Engine.explore ?mode ~on_final:(fun d -> Hashtbl.replace tbl d ()) prog in
  let digests = List.sort compare (Hashtbl.fold (fun d () acc -> d :: acc) tbl []) in
  (r, digests)

let stats_of = function
  | Engine.Ok st | Engine.Violation { stats = st; _ } | Engine.Limit { stats = st; _ } -> st

(* -- registry scenarios ----------------------------------------------- *)

let test_registry_clean () =
  List.iter
    (fun (s : Scenarios.t) ->
      match Engine.explore (s.Scenarios.make ~bound:1) with
      | Engine.Ok st ->
        Alcotest.(check bool)
          (s.Scenarios.name ^ " explored something")
          true (st.Engine.executions > 0)
      | Engine.Violation { name; schedule; _ } ->
        Alcotest.failf "%s: unexpected violation %s (schedule %s)" s.Scenarios.name name
          (Engine.schedule_to_string schedule)
      | Engine.Limit { what; _ } -> Alcotest.failf "%s: hit limit: %s" s.Scenarios.name what)
    (Scenarios.registry ())

let test_exploration_deterministic () =
  List.iter
    (fun (s : Scenarios.t) ->
      let r1, d1 = explore_digests (s.Scenarios.make ~bound:1) in
      let r2, d2 = explore_digests (s.Scenarios.make ~bound:1) in
      Alcotest.(check int)
        (s.Scenarios.name ^ " same executions")
        (stats_of r1).Engine.executions (stats_of r2).Engine.executions;
      Alcotest.(check (list string)) (s.Scenarios.name ^ " same digests") d1 d2)
    (Scenarios.registry ())

(* -- planted bugs ------------------------------------------------------ *)

let test_planted_found () =
  List.iter
    (fun (s : Scenarios.t) ->
      let expect = Option.get s.Scenarios.expect in
      let prog = s.Scenarios.make ~bound:2 in
      match Engine.explore prog with
      | Engine.Violation { name; schedule; _ } ->
        Alcotest.(check string) (s.Scenarios.name ^ " violation name") expect name;
        let shrunk = Engine.shrink prog ~name schedule in
        Alcotest.(check bool)
          (s.Scenarios.name ^ " shrunk no longer")
          true
          (List.length shrunk <= List.length schedule);
        (match Engine.run_schedule prog shrunk with
        | Engine.Replay_violation { name = name'; _ } ->
          Alcotest.(check string) (s.Scenarios.name ^ " replayed violation") expect name'
        | Engine.Replay_ok -> Alcotest.failf "%s: shrunk schedule replays clean" s.Scenarios.name
        | Engine.Replay_invalid why ->
          Alcotest.failf "%s: shrunk schedule invalid: %s" s.Scenarios.name why)
      | Engine.Ok _ -> Alcotest.failf "%s: planted bug MISSED" s.Scenarios.name
      | Engine.Limit { what; _ } ->
        Alcotest.failf "%s: limit before finding bug: %s" s.Scenarios.name what)
    (Scenarios.planted ())

(* -- DPOR vs brute-force cross-validation ------------------------------ *)

let check_dpor_matches_brute ?(strict = false) name prog =
  let rb, db = explore_digests ~mode:`Brute prog in
  let rd, dd = explore_digests ~mode:`Dpor prog in
  (match (rb, rd) with
  | Engine.Ok _, Engine.Ok _ -> ()
  | _ -> Alcotest.failf "%s: non-Ok exploration" name);
  Alcotest.(check (list string)) (name ^ ": same reachable final states") db dd;
  let eb = (stats_of rb).Engine.executions and ed = (stats_of rd).Engine.executions in
  if strict then
    Alcotest.(check bool)
      (Printf.sprintf "%s: dpor strictly fewer (%d < %d)" name ed eb)
      true (ed < eb)
  else
    Alcotest.(check bool) (Printf.sprintf "%s: dpor <= brute (%d <= %d)" name ed eb) true (ed <= eb)

let test_scenarios_vs_brute () =
  List.iter
    (fun name ->
      let s = Option.get (Scenarios.find name) in
      check_dpor_matches_brute name (s.Scenarios.make ~bound:1))
    [ "spsc-push-pop"; "spsc-batch"; "spsc-out-alias"; "mpmc-cap1"; "pool-recycle"; "seq-watermark" ]

(* Two processes on disjoint atomics: every interleaving is equivalent,
   so DPOR must collapse the 2-process diamond to a single execution
   while brute explores all of them. *)
let test_independent_strict_reduction () =
  let prog () =
    let a = Tatomic.make 0 and b = Tatomic.make 0 in
    let pa () =
      Tatomic.set a 1;
      Tatomic.set a 2
    in
    let pb () =
      Tatomic.set b 1;
      Tatomic.set b 2
    in
    {
      Engine.processes = [| pa; pb |];
      final_check =
        (fun () ->
          Tatomic.check "final-a" (Tatomic.get a = 2);
          Tatomic.check "final-b" (Tatomic.get b = 2));
      digest = (fun () -> Printf.sprintf "%d/%d" (Tatomic.get a) (Tatomic.get b));
    }
  in
  check_dpor_matches_brute ~strict:true "independent-2x2" prog;
  let rd, _ = explore_digests ~mode:`Dpor prog in
  Alcotest.(check int) "independent program needs exactly 1 execution" 1
    (stats_of rd).Engine.executions;
  let rb, _ = explore_digests ~mode:`Brute prog in
  (* 4 steps, choose 2 for process a: C(4,2) = 6 interleavings *)
  Alcotest.(check int) "brute explores the full diamond" 6 (stats_of rb).Engine.executions

(* -- qcheck micro-programs -------------------------------------------- *)

type mop = MGet | MSet of int | MFaa of int | MCas of int * int

let mop_to_string (o, op) =
  match op with
  | MGet -> Printf.sprintf "g%d" o
  | MSet v -> Printf.sprintf "s%d=%d" o v
  | MFaa n -> Printf.sprintf "f%d+%d" o n
  | MCas (a, b) -> Printf.sprintf "c%d:%d>%d" o a b

let micro_program nobjs (procs : (int * mop) list array) () =
  let objs = Array.init nobjs (fun _ -> Tatomic.make 0) in
  let logs = Array.map (fun _ -> ref []) procs in
  let run i () =
    List.iter
      (fun (o, op) ->
        let r = objs.(o) in
        let log v = logs.(i) := v :: !(logs.(i)) in
        match op with
        | MGet -> log (Tatomic.get r)
        | MSet v ->
          Tatomic.set r v;
          log (-1)
        | MFaa n -> log (Tatomic.fetch_and_add r n)
        | MCas (a, b) -> log (if Tatomic.compare_and_set r a b then 1 else 0))
      procs.(i)
  in
  {
    Engine.processes = Array.init (Array.length procs) run;
    final_check = (fun () -> ());
    digest =
      (fun () ->
        let vals =
          String.concat "," (Array.to_list (Array.map (fun r -> string_of_int (Tatomic.get r)) objs))
        in
        let obs =
          String.concat "|"
            (Array.to_list
               (Array.map (fun l -> String.concat "," (List.rev_map string_of_int !l)) logs))
        in
        vals ^ "#" ^ obs);
  }

let micro_gen =
  let open QCheck.Gen in
  int_range 1 2 >>= fun nobjs ->
  int_range 2 3 >>= fun nprocs ->
  let op =
    int_range 0 (nobjs - 1) >>= fun o ->
    oneof
      [
        return (o, MGet);
        (int_range 1 3 >|= fun v -> (o, MSet v));
        return (o, MFaa 1);
        (pair (int_range 0 2) (int_range 1 3) >|= fun (a, b) -> (o, MCas (a, b)));
      ]
  in
  list_size (int_range 1 3) op |> list_repeat nprocs >|= fun ops -> (nobjs, Array.of_list ops)

let micro_print (nobjs, procs) =
  Printf.sprintf "objs=%d procs=[%s]" nobjs
    (String.concat " ; "
       (Array.to_list (Array.map (fun l -> String.concat "," (List.map mop_to_string l)) procs)))

let micro_qcheck =
  QCheck.Test.make ~count:60 ~name:"dpor = brute on random micro-programs"
    (QCheck.make ~print:micro_print micro_gen)
    (fun (nobjs, procs) ->
      let prog = micro_program nobjs procs in
      let rb, db = explore_digests ~mode:`Brute prog in
      let rd, dd = explore_digests ~mode:`Dpor prog in
      match (rb, rd) with
      | Engine.Ok sb, Engine.Ok sd ->
        if db <> dd then QCheck.Test.fail_reportf "digest sets differ";
        if sd.Engine.executions > sb.Engine.executions then
          QCheck.Test.fail_reportf "dpor explored more than brute (%d > %d)" sd.Engine.executions
            sb.Engine.executions;
        true
      | _ -> QCheck.Test.fail_reportf "non-Ok exploration")

(* -- engine plumbing --------------------------------------------------- *)

let test_schedule_strings () =
  List.iter
    (fun s ->
      Alcotest.(check (list int))
        "roundtrip" s
        (Engine.schedule_of_string (Engine.schedule_to_string s)))
    [ []; [ 0 ]; [ 0; 1; 0; 2 ] ];
  Alcotest.(check int) "switches" 3 (Engine.switches [ 0; 0; 1; 0; 0; 2 ])

let test_preemption_bound () =
  let s = Option.get (Scenarios.find "spsc-push-pop") in
  let prog = s.Scenarios.make ~bound:2 in
  let unbounded = Engine.explore prog in
  let bounded = Engine.explore ~preemption_bound:0 prog in
  match (unbounded, bounded) with
  | Engine.Ok su, Engine.Ok sb ->
    Alcotest.(check bool)
      (Printf.sprintf "bounded explores no more (%d <= %d)" sb.Engine.executions
         su.Engine.executions)
      true
      (sb.Engine.executions <= su.Engine.executions)
  | _ -> Alcotest.fail "non-Ok exploration"

let test_run_inline () =
  let n =
    Engine.run_inline (fun () ->
        let a = Tatomic.make 1 in
        Tatomic.set a (Tatomic.get a + 41);
        Tatomic.get a)
  in
  Alcotest.(check int) "run_inline executes traced code" 42 n

let () =
  Alcotest.run "chk"
    [
      ( "scenarios",
        [
          Alcotest.test_case "registry clean at bound 1" `Quick test_registry_clean;
          Alcotest.test_case "exploration is deterministic" `Quick test_exploration_deterministic;
          Alcotest.test_case "planted bugs found + shrunk repro replays" `Quick test_planted_found;
        ] );
      ( "cross-validation",
        [
          Alcotest.test_case "scenarios: dpor = brute" `Quick test_scenarios_vs_brute;
          Alcotest.test_case "independent ops: strict reduction" `Quick
            test_independent_strict_reduction;
          QCheck_alcotest.to_alcotest micro_qcheck;
        ] );
      ( "engine",
        [
          Alcotest.test_case "schedule strings" `Quick test_schedule_strings;
          Alcotest.test_case "preemption bounding" `Quick test_preemption_bound;
          Alcotest.test_case "run_inline" `Quick test_run_inline;
        ] );
    ]

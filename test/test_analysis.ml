(* Tests for the analysis layer: footprint normalization properties, the
   footprint sanitizer (undeclared accesses, writes under Read mode,
   orphan accesses), and the happens-before race checker — including the
   acceptance scenario: a seeded undeclared-access bug must be flagged,
   and the identical workload with the corrected footprint must pass
   clean. *)

open Doradd_core
module A = Doradd_analysis

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ------------------------------------------------------------------ *)
(* Bitset                                                              *)
(* ------------------------------------------------------------------ *)

let test_bitset_basic () =
  let b = A.Bitset.create 100 in
  checkb "empty" false (A.Bitset.mem b 13);
  A.Bitset.add b 13;
  A.Bitset.add b 99;
  A.Bitset.add b 0;
  checkb "mem 13" true (A.Bitset.mem b 13);
  checkb "mem 99" true (A.Bitset.mem b 99);
  checkb "mem 0" true (A.Bitset.mem b 0);
  checkb "not mem 14" false (A.Bitset.mem b 14);
  checki "cardinal" 3 (A.Bitset.cardinal b)

let test_bitset_union () =
  let a = A.Bitset.create 64 in
  let b = A.Bitset.create 64 in
  A.Bitset.add a 1;
  A.Bitset.add b 2;
  A.Bitset.add b 63;
  A.Bitset.union_into ~into:a b;
  checkb "kept own" true (A.Bitset.mem a 1);
  checkb "gained 2" true (A.Bitset.mem a 2);
  checkb "gained 63" true (A.Bitset.mem a 63);
  checki "src untouched" 2 (A.Bitset.cardinal b)

let test_bitset_edges () =
  let b = A.Bitset.create 10 in
  A.Bitset.add b 3;
  (* membership never raises: out-of-range (either side) is absent *)
  checkb "negative index absent" false (A.Bitset.mem b (-1));
  checkb "min_int absent" false (A.Bitset.mem b min_int);
  checkb "past capacity absent" false (A.Bitset.mem b (A.Bitset.capacity b));
  checkb "max_int absent" false (A.Bitset.mem b max_int);
  (* adds outside the range are caller bugs *)
  Alcotest.check_raises "add negative" (Invalid_argument "Bitset.add") (fun () ->
      A.Bitset.add b (-1));
  Alcotest.check_raises "add past capacity" (Invalid_argument "Bitset.add") (fun () ->
      A.Bitset.add b (A.Bitset.capacity b));
  Alcotest.check_raises "create negative" (Invalid_argument "Bitset.create") (fun () ->
      ignore (A.Bitset.create (-1)))

let test_bitset_zero_length () =
  let z = A.Bitset.create 0 in
  checki "capacity 0" 0 (A.Bitset.capacity z);
  checki "cardinal 0" 0 (A.Bitset.cardinal z);
  checkb "nothing is a member" false (A.Bitset.mem z 0);
  (* zero-length clocks union with each other (degenerate but legal) *)
  A.Bitset.union_into ~into:z (A.Bitset.create 0);
  checki "still empty" 0 (A.Bitset.cardinal z)

(* model-based property: a bitset agrees with an IntSet on any program of
   in-range adds, with membership probed across the whole int range *)
let prop_bitset_matches_set_model =
  let module S = Set.Make (Int) in
  QCheck.Test.make ~name:"bitset matches set model" ~count:300
    QCheck.(pair (int_range 1 200) (small_list (int_range 0 199)))
    (fun (n, adds) ->
      let n = max 1 n in
      let b = A.Bitset.create n in
      let cap = A.Bitset.capacity b in
      let model =
        List.fold_left
          (fun m i -> if i < cap then (A.Bitset.add b i; S.add i m) else m)
          S.empty adds
      in
      A.Bitset.cardinal b = S.cardinal model
      && List.for_all
           (fun i -> A.Bitset.mem b i = S.mem i model)
           [ -1; 0; 1; n - 1; n; cap - 1; cap; max_int; min_int ]
      && List.for_all (fun i -> A.Bitset.mem b i) (S.elements model))

(* ------------------------------------------------------------------ *)
(* Footprint normalization properties (qcheck)                         *)
(* ------------------------------------------------------------------ *)

(* A raw footprint over a small pool of slots: list of (slot index, mode). *)
let raw_fp_gen =
  QCheck.(list_of_size Gen.(0 -- 12) (pair (int_range 0 5) bool))

let mode_of_bool w = if w then Footprint.Write else Footprint.Read

let with_pool f =
  let pool = Array.init 6 (fun _ -> Slot.create ()) in
  f pool

let prop_footprint_sorted_dedup =
  QCheck.Test.make ~name:"normalization: slot ids strictly increasing (dedup)" ~count:500
    raw_fp_gen (fun raw ->
      with_pool (fun pool ->
          let fp = Footprint.of_list (List.map (fun (i, w) -> (pool.(i), mode_of_bool w)) raw) in
          let distinct = List.sort_uniq compare (List.map fst raw) in
          let ids = ref [] in
          Footprint.iter fp (fun s _ -> ids := Slot.id s :: !ids);
          let ids = List.rev !ids in
          List.length ids = List.length distinct
          && List.sort_uniq compare ids = ids))

let prop_footprint_write_dominates =
  QCheck.Test.make ~name:"normalization: Write dominates Read per slot" ~count:500 raw_fp_gen
    (fun raw ->
      with_pool (fun pool ->
          let fp = Footprint.of_list (List.map (fun (i, w) -> (pool.(i), mode_of_bool w)) raw) in
          List.for_all
            (fun i ->
              let modes = List.filter_map (fun (j, w) -> if j = i then Some w else None) raw in
              let expected =
                if modes = [] then None
                else if List.exists Fun.id modes then Some Footprint.Write
                else Some Footprint.Read
              in
              Footprint.mode_of fp pool.(i) = expected
              && Footprint.mem fp pool.(i) = (expected <> None))
            [ 0; 1; 2; 3; 4; 5 ]))

let test_footprint_self_dependency () =
  (* a request naming the same slot twice must not depend on itself: the
     normalized footprint holds the slot once, so the spawner never links
     the node behind its own registration *)
  let s = Slot.create () in
  let fp = Footprint.of_list [ (s, Footprint.Write); (s, Footprint.Read); (s, Footprint.Write) ] in
  checki "one entry" 1 (Footprint.length fp);
  checkb "write wins" true (Footprint.mode_of fp s = Some Footprint.Write)

let test_footprint_mode_of_absent () =
  let s = Slot.create () in
  let other = Slot.create () in
  let fp = Footprint.of_slots [ s ] in
  checkb "absent slot" true (Footprint.mode_of fp other = None);
  checkb "mem agrees" false (Footprint.mem fp other)

(* ------------------------------------------------------------------ *)
(* Happens-before checker on hand-built logs                           *)
(* ------------------------------------------------------------------ *)

let acc seqno slot kind = { Sanitizer.a_seqno = seqno; a_slot = slot; a_kind = kind }

let test_hb_ordered_chain () =
  let accesses = [ acc 0 7 Sanitizer.Store; acc 1 7 Store; acc 2 7 Store ] in
  let r = A.Hb.check ~edges:[ (0, 1); (1, 2) ] ~accesses in
  checki "no races" 0 (List.length r.A.Hb.races);
  checki "pairs" 2 r.A.Hb.checked_pairs

let test_hb_transitive_order () =
  (* 0 -> 1 -> 2 with a conflicting pair (0, 2): ordered via the closure
     even though no direct edge exists *)
  let accesses = [ acc 0 7 Sanitizer.Store; acc 2 7 Store ] in
  let r = A.Hb.check ~edges:[ (0, 1); (1, 2) ] ~accesses in
  checki "no races" 0 (List.length r.A.Hb.races)

let test_hb_missing_edge () =
  let accesses = [ acc 0 7 Sanitizer.Store; acc 1 7 Store ] in
  let r = A.Hb.check ~edges:[] ~accesses in
  checki "one race" 1 (List.length r.A.Hb.races);
  let race = List.hd r.A.Hb.races in
  checki "slot" 7 race.A.Hb.slot;
  checki "first" 0 race.A.Hb.first;
  checki "second" 1 race.A.Hb.second

let test_hb_reads_share () =
  (* write 0, loads 1 and 2, write 3: load/load needs no order, but the
     writer must be ordered behind both loads *)
  let accesses =
    [ acc 0 7 Sanitizer.Store; acc 1 7 Load; acc 2 7 Load; acc 3 7 Store ]
  in
  let ordered = A.Hb.check ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3) ] ~accesses in
  checki "no races when readers fenced" 0 (List.length ordered.A.Hb.races);
  let unordered = A.Hb.check ~edges:[ (0, 1); (0, 2); (1, 3) ] ~accesses in
  checki "missing read->write edge is a race" 1 (List.length unordered.A.Hb.races);
  let race = List.hd unordered.A.Hb.races in
  checki "read side" 2 race.A.Hb.first;
  checki "write side" 3 race.A.Hb.second

let test_hb_bad_edge () =
  let r = A.Hb.check ~edges:[ (3, 1) ] ~accesses:[ acc 0 7 Sanitizer.Store ] in
  checki "bad edge reported" 1 (List.length r.A.Hb.bad_edges);
  checkb "flagged pair" true (List.mem (3, 1) r.A.Hb.bad_edges)

let test_hb_degenerate_inputs () =
  (* nothing recorded at all *)
  let r = A.Hb.check ~edges:[] ~accesses:[] in
  checki "no requests" 0 r.A.Hb.requests;
  checki "no races" 0 (List.length r.A.Hb.races);
  (* negative-seqno orphan accesses are dropped, not folded into the
     serial order — here they are the only accesses, so the result is
     the empty one even though a conflicting pair "exists" among them *)
  let r = A.Hb.check ~edges:[] ~accesses:[ acc (-1) 7 Sanitizer.Store; acc (-2) 7 Store ] in
  checki "orphans ignored" 0 r.A.Hb.requests;
  checki "no pairs from orphans" 0 r.A.Hb.checked_pairs;
  (* mixed: the orphan must not crash the clock indexing or pair with
     the real access *)
  let r =
    A.Hb.check ~edges:[ (0, 1) ]
      ~accesses:[ acc (-3) 7 Sanitizer.Store; acc 0 7 Store; acc 1 7 Store ]
  in
  checki "real pair still checked" 1 r.A.Hb.checked_pairs;
  checki "still no races" 0 (List.length r.A.Hb.races);
  (* self-edges and negative edges are malformed, never closed over *)
  let r = A.Hb.check ~edges:[ (2, 2); (-1, 0) ] ~accesses:[ acc 0 7 Sanitizer.Store ] in
  checki "both malformed" 2 (List.length r.A.Hb.bad_edges)

(* hb never raises on arbitrary (malformed included) recordings, and
   every reported race names a real conflicting pair in serial order *)
let prop_hb_total_on_garbage =
  QCheck.Test.make ~name:"hb: total on arbitrary recordings" ~count:300
    QCheck.(
      pair
        (small_list (pair (int_range (-2) 12) (int_range (-2) 12)))
        (small_list (triple (int_range (-3) 12) (int_range 0 3) bool)))
    (fun (edges, raw_accs) ->
      let accesses =
        List.map
          (fun (s, slot, store) ->
            acc s slot (if store then Sanitizer.Store else Sanitizer.Load))
          raw_accs
      in
      let r = A.Hb.check ~edges ~accesses in
      List.for_all
        (fun (rc : A.Hb.race) ->
          rc.A.Hb.first >= 0
          && rc.A.Hb.first < rc.A.Hb.second
          && rc.A.Hb.second < r.A.Hb.requests
          && (rc.A.Hb.first_kind = Sanitizer.Store || rc.A.Hb.second_kind = Sanitizer.Store))
        r.A.Hb.races
      && List.for_all (fun (p, s) -> p < 0 || s <= p || s >= r.A.Hb.requests) r.A.Hb.bad_edges)

(* ------------------------------------------------------------------ *)
(* Sanitizer end-to-end through the real runtime                       *)
(* ------------------------------------------------------------------ *)

let test_sanitizer_clean_run () =
  let o = A.Workloads.counters.A.Workloads.replay ~seed:11 ~n:400 ~workers:2 in
  checkb "clean" true (A.Sanitize.clean o);
  checki "requests observed" 400 o.A.Sanitize.requests;
  checkb "accesses recorded" true (o.A.Sanitize.accesses > 0);
  checkb "pairs checked" true (o.A.Sanitize.hb.A.Hb.checked_pairs > 0)

(* the acceptance scenario: seeded undeclared access is flagged; the same
   workload with the corrected footprint passes clean *)
let test_sanitizer_catches_seeded_bug () =
  let buggy = (A.Workloads.buggy ~declared:false).A.Workloads.replay ~seed:1 ~n:200 ~workers:2 in
  checkb "not clean" false (A.Sanitize.clean buggy);
  checkb "undeclared reported" true
    (List.exists
       (function
         | Sanitizer.Undeclared { kind = Sanitizer.Store; _ } -> true
         | _ -> false)
       buggy.A.Sanitize.violations);
  checkb "hb races reported" true (buggy.A.Sanitize.hb.A.Hb.races <> []);
  let fixed = (A.Workloads.buggy ~declared:true).A.Workloads.replay ~seed:1 ~n:200 ~workers:2 in
  checkb "corrected footprint is clean" true (A.Sanitize.clean fixed)

let test_sanitizer_write_under_read () =
  let r = Resource.create 0 in
  let o =
    A.Sanitize.run (fun () ->
        Runtime.run_log ~workers:1
          (fun () -> Footprint.of_list [ Resource.read r ])
          (fun () -> Resource.set r 1)
          [| () |])
  in
  checkb "write under read flagged" true
    (List.exists
       (function Sanitizer.Write_under_read _ -> true | _ -> false)
       o.A.Sanitize.violations)

let test_sanitizer_orphan_access () =
  let r = Resource.create 0 in
  let o =
    A.Sanitize.run (fun () ->
        Runtime.run_log ~workers:1
          (fun () -> Footprint.of_list [ Resource.write r ])
          (fun () -> Resource.set r 1)
          [| () |];
        (* runtime has shut down; this thread has no request context *)
        ignore (Resource.get r))
  in
  checkb "orphan flagged" true
    (List.exists (function Sanitizer.Orphan _ -> true | _ -> false) o.A.Sanitize.violations);
  checkb "peek is exempt" true
    (let o2 =
       A.Sanitize.run (fun () -> ignore (Resource.peek r))
     in
     A.Sanitize.clean o2)

let test_sanitizer_off_means_silent () =
  (* with tracking off, undeclared accesses go unrecorded: the default
     path must not observe, allocate, or fail *)
  let r = Resource.create 0 in
  Runtime.run_log ~workers:1 (fun () -> Footprint.empty) (fun () -> Resource.set r 42) [| () |];
  checki "ran" 42 (Resource.get r);
  checkb "nothing tracked" false (Sanitizer.is_tracking ())

let test_sanitizer_cooperative_steps () =
  (* yielding procedures: every step must run under the request context *)
  let r = Resource.create 0 in
  let o =
    A.Sanitize.run (fun () ->
        let t = Runtime.create ~workers:2 () in
        Runtime.schedule_steps t
          (Footprint.of_list [ Resource.write r ])
          (fun () ->
            Resource.update r succ;
            Node.Yield
              (fun () ->
                Resource.update r succ;
                Node.Finished));
        Runtime.shutdown t)
  in
  checkb "clean across yield" true (A.Sanitize.clean o);
  checki "both steps ran" 2 (Resource.get r)

(* ------------------------------------------------------------------ *)
(* qcheck properties over the sanitized runtime                        *)
(* ------------------------------------------------------------------ *)

(* honest random counters logs replay clean for any worker count *)
let prop_sanitized_honest_logs_clean =
  QCheck.Test.make ~name:"sanitizer: honest random logs are clean" ~count:20
    QCheck.(pair (int_range 1 1_000_000) (int_range 1 3))
    (fun (seed, workers) ->
      let o = A.Workloads.counters.A.Workloads.replay ~seed ~n:150 ~workers in
      A.Sanitize.clean o)

(* dropping one slot from one multi-slot request's footprint is always
   caught as an undeclared access *)
let prop_sanitized_underdeclaration_caught =
  QCheck.Test.make ~name:"sanitizer: any dropped footprint entry is flagged" ~count:30
    QCheck.(pair (int_range 1 1_000_000) (int_range 0 49))
    (fun (seed, victim) ->
      let module Rng = Doradd_stats.Rng in
      let n = 50 and n_keys = 16 in
      let rng = Rng.create seed in
      (* every request touches two distinct cells *)
      let log =
        Array.init n (fun id ->
            let a = Rng.int rng n_keys in
            let b = (a + 1 + Rng.int rng (n_keys - 1)) mod n_keys in
            (id, a, b))
      in
      let cells = Array.init n_keys (fun _ -> Resource.create 0) in
      let footprint (id, a, b) =
        let slots =
          if id = victim then [ Resource.slot cells.(a) ]
          else [ Resource.slot cells.(a); Resource.slot cells.(b) ]
        in
        Footprint.of_slots slots
      in
      let execute (id, a, b) =
        Resource.update cells.(a) (fun v -> v + id);
        Resource.update cells.(b) (fun v -> v + id)
      in
      let o = A.Sanitize.run (fun () -> Runtime.run_log ~workers:2 footprint execute log) in
      List.exists
        (function
          | Sanitizer.Undeclared { seqno; _ } -> seqno = victim
          | _ -> false)
        o.A.Sanitize.violations)

(* ------------------------------------------------------------------ *)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "doradd-analysis"
    [
      ( "bitset",
        [
          tc "basic" `Quick test_bitset_basic;
          tc "union" `Quick test_bitset_union;
          tc "out-of-range indices" `Quick test_bitset_edges;
          tc "zero-length clocks" `Quick test_bitset_zero_length;
          QCheck_alcotest.to_alcotest prop_bitset_matches_set_model;
        ] );
      ( "footprint-props",
        [
          QCheck_alcotest.to_alcotest prop_footprint_sorted_dedup;
          QCheck_alcotest.to_alcotest prop_footprint_write_dominates;
          tc "self dependency eliminated" `Quick test_footprint_self_dependency;
          tc "mode_of absent slot" `Quick test_footprint_mode_of_absent;
        ] );
      ( "happens-before",
        [
          tc "ordered chain" `Quick test_hb_ordered_chain;
          tc "transitive order" `Quick test_hb_transitive_order;
          tc "missing edge is a race" `Quick test_hb_missing_edge;
          tc "readers share, writer fences" `Quick test_hb_reads_share;
          tc "malformed edge reported" `Quick test_hb_bad_edge;
          tc "degenerate recordings" `Quick test_hb_degenerate_inputs;
          QCheck_alcotest.to_alcotest prop_hb_total_on_garbage;
        ] );
      ( "sanitizer",
        [
          tc "clean run" `Slow test_sanitizer_clean_run;
          tc "seeded bug caught, corrected clean" `Slow test_sanitizer_catches_seeded_bug;
          tc "write under Read mode" `Quick test_sanitizer_write_under_read;
          tc "orphan access" `Quick test_sanitizer_orphan_access;
          tc "off means silent" `Quick test_sanitizer_off_means_silent;
          tc "cooperative steps bracketed" `Quick test_sanitizer_cooperative_steps;
          QCheck_alcotest.to_alcotest prop_sanitized_honest_logs_clean;
          QCheck_alcotest.to_alcotest prop_sanitized_underdeclaration_caught;
        ] );
    ]

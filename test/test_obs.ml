(* Tests for doradd_obs: the disarmed-by-default span tracer, timeline
   reconstruction, the JSON codec, and the exporters — including the
   acceptance check that a traced DST replay produces a structurally
   valid Chrome trace_event document. *)

module Obs = Doradd_obs
module Trace = Obs.Trace
module Timeline = Obs.Timeline
module Json = Obs.Json
module Core = Doradd_core
module Rng = Doradd_stats.Rng
module Db = Doradd_db

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* Small real-runtime workload (same shape as the DST counters case). *)
let run_counters ~n ~workers ~seed =
  let n_cells = 32 in
  let rng = Rng.create seed in
  let log =
    Array.init n (fun id ->
        (id, Array.init (1 + Rng.int rng 3) (fun _ -> Rng.int rng n_cells)))
  in
  let cells = Array.init n_cells (fun _ -> Core.Resource.create 0) in
  Core.Runtime.run_log ~workers
    (fun (_, ks) ->
      Core.Footprint.of_slots
        (Array.to_list (Array.map (fun k -> Core.Resource.slot cells.(k)) ks)))
    (fun (id, ks) ->
      Array.iter (fun k -> Core.Resource.update cells.(k) (fun v -> (v * 31) + id)) ks)
    log

let kv_txns ~n ~n_keys ~seed =
  let rng = Rng.create seed in
  Array.init n (fun id ->
      let ops =
        Array.init 4 (fun _ ->
            {
              Db.Kv.key = Rng.int rng n_keys;
              kind = (if Rng.bool rng then Db.Kv.Read else Db.Kv.Update);
            })
      in
      { Db.Kv.id; ops })

(* ---- disarmed path: observability off records nothing --------------- *)

let test_disarmed_records_nothing () =
  Obs.Counters.reset ();
  Trace.clear ();
  checkb "starts disarmed" false (Trace.is_armed ());
  run_counters ~n:64 ~workers:2 ~seed:7;
  checki "no events recorded" 0 (Trace.event_count ());
  let counters, watermarks, hists = Obs.Counters.snapshot () in
  List.iter (fun (name, v) -> checki ("counter zero: " ^ name) 0 v) counters;
  List.iter (fun (name, v) -> checki ("watermark zero: " ^ name) 0 v) watermarks;
  List.iter (fun h -> checki ("histogram empty: " ^ h.Obs.Counters.hs_name) 0 h.hs_count) hists

(* ---- armed runtime run: spans for every request --------------------- *)

let stage_ts span stage = Option.map (fun m -> m.Timeline.m_ts) (Timeline.get span stage)

let check_monotone span =
  let tss = List.filter_map (stage_ts span) Trace.stages in
  let rec mono = function
    | a :: (b :: _ as rest) -> a <= b && mono rest
    | _ -> true
  in
  checkb (Printf.sprintf "span %d stages time-ordered" span.Timeline.seqno) true (mono tss)

let test_armed_runtime_spans () =
  let n = 50 in
  Obs.Counters.reset ();
  Trace.arm ();
  run_counters ~n ~workers:2 ~seed:11;
  Trace.disarm ();
  let spans = Timeline.spans (Trace.events ()) in
  Trace.clear ();
  checki "one span per request" n (List.length spans);
  let committed =
    List.filter (fun (s : Timeline.span) -> s.commit <> None) spans
  in
  checki "every span committed" n (List.length committed);
  List.iter
    (fun (s : Timeline.span) ->
      checkb (Printf.sprintf "span %d has exec_start" s.seqno) true (s.exec_start <> None);
      check_monotone s;
      checkb
        (Printf.sprintf "span %d total non-negative" s.seqno)
        true
        (match Timeline.total s with Some t -> t >= 0 | None -> false))
    spans;
  (* counters moved while armed *)
  let pops = Obs.Counters.(value (counter "runnable_set.pop_local")) in
  let steals = Obs.Counters.(value (counter "runnable_set.pop_steal")) in
  checkb "runnable-set pops recorded" true (pops + steals >= n)

(* ---- armed pipeline run: the full 7-stage timeline ------------------ *)

let test_pipeline_spans_full_timeline () =
  let n = 60 and n_keys = 64 in
  let s = Db.Store.create () in
  Db.Store.populate s ~n:n_keys;
  Obs.Counters.reset ();
  Trace.arm ();
  ignore
    (Db.Kv_pipeline.run_pipelined ~workers:2 ~stages:Core.Pipeline.Four_core s
       (kv_txns ~n ~n_keys ~seed:13));
  Trace.disarm ();
  let spans = Timeline.spans (Trace.events ()) in
  Trace.clear ();
  checki "one span per request" n (List.length spans);
  List.iter
    (fun (sp : Timeline.span) ->
      List.iter
        (fun stage ->
          checkb
            (Printf.sprintf "span %d crossed %s" sp.seqno (Trace.stage_to_string stage))
            true
            (Timeline.get sp stage <> None))
        Trace.stages;
      check_monotone sp)
    spans;
  (* with all stages present, the components are exactly the canonical list *)
  match spans with
  | sp :: _ ->
    Alcotest.check (Alcotest.list Alcotest.string) "component names"
      Timeline.component_names
      (List.map (fun (name, _, _) -> name) (Timeline.components sp))
  | [] -> Alcotest.fail "no spans"

(* ---- timeline arithmetic on synthetic events ------------------------ *)

let record ~ts ?(tid = 7) stage ~seqno = Trace.record_at ~ts ~tid stage ~seqno

let test_timeline_math () =
  Trace.arm ();
  record ~ts:100 Trace.Rpc_enqueue ~seqno:0;
  record ~ts:250 Trace.Index ~seqno:0;
  record ~ts:400 Trace.Prefetch ~seqno:0;
  record ~ts:600 Trace.Spawn ~seqno:0;
  record ~ts:900 Trace.Runnable ~seqno:0;
  record ~ts:1000 Trace.Exec_start ~seqno:0;
  record ~ts:1500 Trace.Commit ~seqno:0;
  Trace.disarm ();
  let spans = Timeline.spans (Trace.events ()) in
  Trace.clear ();
  checki "one span" 1 (List.length spans);
  let sp = List.hd spans in
  let gap from_ to_ = Timeline.gap sp ~from_ ~to_ in
  Alcotest.check (Alcotest.option Alcotest.int) "dispatch-wait" (Some 150)
    (gap Trace.Rpc_enqueue Trace.Index);
  Alcotest.check (Alcotest.option Alcotest.int) "dag-wait" (Some 300)
    (gap Trace.Spawn Trace.Runnable);
  Alcotest.check (Alcotest.option Alcotest.int) "execute" (Some 500)
    (gap Trace.Exec_start Trace.Commit);
  Alcotest.check (Alcotest.option Alcotest.int) "total" (Some 1400) (Timeline.total sp);
  let comps = Timeline.components sp in
  checki "six components" 6 (List.length comps);
  List.iter
    (fun (name, (a : Timeline.mark), (b : Timeline.mark)) ->
      checkb (name ^ " positive") true (b.m_ts > a.m_ts);
      checki (name ^ " tid") 7 b.m_tid)
    comps;
  let bd = Timeline.breakdown spans in
  checkb "breakdown has total" true (List.mem_assoc "total" bd);
  checki "total count" 1 Doradd_stats.Histogram.(count (List.assoc "total" bd))

let test_timeline_bridges_missing_stages () =
  (* a runtime-only trace has no rpc/index/prefetch marks: adjacent
     recorded stages still pair up, named by the segment they end *)
  Trace.arm ();
  record ~ts:10 Trace.Spawn ~seqno:3;
  record ~ts:30 Trace.Exec_start ~seqno:3;
  record ~ts:50 Trace.Commit ~seqno:3;
  Trace.disarm ();
  let sp = List.hd (Timeline.spans (Trace.events ())) in
  Trace.clear ();
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "bridged components"
    [ ("ready-wait", 20); ("execute", 20) ]
    (List.map
       (fun (name, (a : Timeline.mark), (b : Timeline.mark)) -> (name, b.m_ts - a.m_ts))
       (Timeline.components sp))

let test_timeline_first_wins_except_commit () =
  Trace.arm ();
  record ~ts:100 Trace.Exec_start ~seqno:0;
  record ~ts:140 Trace.Exec_start ~seqno:0;
  (* a yielding request commits once per step: the span must keep the last *)
  record ~ts:200 Trace.Commit ~seqno:0;
  record ~ts:900 Trace.Commit ~seqno:0;
  Trace.disarm ();
  let sp = List.hd (Timeline.spans (Trace.events ())) in
  Trace.clear ();
  Alcotest.check (Alcotest.option Alcotest.int) "exec_start first-wins" (Some 100)
    (stage_ts sp Trace.Exec_start);
  Alcotest.check (Alcotest.option Alcotest.int) "commit last-wins" (Some 900)
    (stage_ts sp Trace.Commit)

(* ---- JSON codec ----------------------------------------------------- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.Str "a\"b\\c\nd");
        ("n", Json.Num 42.);
        ("f", Json.Num 1.5);
        ("neg", Json.Num (-17.));
        ("b", Json.Bool true);
        ("z", Json.Null);
        ("a", Json.Arr [ Json.Num 1.; Json.Str "x"; Json.Arr []; Json.Obj [] ]);
      ]
  in
  checkb "roundtrip" true (Json.parse_exn (Json.to_string doc) = doc);
  checkb "integral prints bare" true
    (not (String.contains (Json.to_string (Json.Num 42.)) '.'));
  List.iter
    (fun bad ->
      checkb ("rejects " ^ bad) true
        (match Json.parse bad with Ok _ -> false | Error _ -> true))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

(* ---- exporters ------------------------------------------------------ *)

let synthetic_events () =
  Trace.arm ();
  for seqno = 0 to 4 do
    let base = 1000 * seqno in
    record ~ts:base Trace.Spawn ~seqno;
    record ~ts:(base + 200) Trace.Runnable ~seqno;
    record ~ts:(base + 300) Trace.Exec_start ~seqno;
    record ~ts:(base + 700) Trace.Commit ~seqno
  done;
  Trace.disarm ();
  let evs = Trace.events () in
  Trace.clear ();
  evs

let test_chrome_trace_structure () =
  let events = synthetic_events () in
  let doc = Json.parse_exn (Obs.Export.chrome_trace_string ~events ()) in
  let trace_events =
    match Option.bind (Json.member "traceEvents" doc) Json.to_list with
    | Some l -> l
    | None -> Alcotest.fail "traceEvents missing"
  in
  checkb "has events" true (trace_events <> []);
  let field name ev = Json.member name ev in
  let xs =
    List.filter
      (fun ev -> Option.bind (field "ph" ev) Json.to_str = Some "X")
      trace_events
  in
  (* 3 components x 5 requests *)
  checki "complete events" 15 (List.length xs);
  List.iter
    (fun ev ->
      checkb "name is string" true (Option.bind (field "name" ev) Json.to_str <> None);
      List.iter
        (fun k ->
          checkb (k ^ " is number") true (Option.bind (field k ev) Json.to_float <> None))
        [ "ts"; "dur"; "pid"; "tid" ])
    xs;
  checkb "has metadata events" true
    (List.exists
       (fun ev -> Option.bind (field "ph" ev) Json.to_str = Some "M")
       trace_events)

let test_metrics_json_structure () =
  let events = synthetic_events () in
  Obs.Counters.reset ();
  (* populate the registry so the dump has non-trivial content *)
  Trace.arm ();
  run_counters ~n:32 ~workers:2 ~seed:3;
  Trace.disarm ();
  Trace.clear ();
  let doc = Json.parse_exn (Obs.Export.metrics_json_string ~events ()) in
  let committed =
    Option.bind (Json.member "spans" doc) (fun s ->
        Option.bind (Json.member "committed" s) Json.to_float)
  in
  Alcotest.check (Alcotest.option (Alcotest.float 0.)) "committed spans" (Some 5.)
    committed;
  (match Json.member "counters" doc with
  | Some (Json.Obj fields) ->
    checkb "counters non-empty" true (fields <> []);
    checkb "runnable-set pops counted" true
      (match List.assoc_opt "runnable_set.pop_local" fields with
      | Some (Json.Num _) -> true
      | _ -> List.mem_assoc "runnable_set.pop_steal" fields)
  | _ -> Alcotest.fail "counters object missing");
  checkb "breakdown present" true (Json.member "breakdown" doc <> None)

(* ---- acceptance: traced DST replay is Perfetto-loadable ------------- *)

let test_dst_replay_trace_artifact () =
  let path = Filename.temp_file "doradd-dst-trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let r =
        Doradd_dst.Runner.replay ~case:"counters" ~n:64 ~trace_path:path ~seed:1 ()
      in
      checkb "replay clean" true (Doradd_dst.Runner.seed_ok r);
      Alcotest.check (Alcotest.option Alcotest.string) "trace_file reported" (Some path)
        r.trace_file;
      let doc = Json.parse_exn (In_channel.with_open_text path In_channel.input_all) in
      let trace_events =
        match Option.bind (Json.member "traceEvents" doc) Json.to_list with
        | Some l -> l
        | None -> Alcotest.fail "traceEvents missing"
      in
      checkb "trace has slices" true
        (List.exists
           (fun ev -> Option.bind (Json.member "ph" ev) Json.to_str = Some "X")
           trace_events);
      (* the metrics dump rides along under a key Perfetto ignores *)
      checkb "doraddMetrics embedded" true (Json.member "doraddMetrics" doc <> None))

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "obs"
    [
      ( "armed/disarmed",
        [
          tc "disarmed records nothing" `Quick test_disarmed_records_nothing;
          tc "armed runtime spans" `Quick test_armed_runtime_spans;
          tc "pipeline full timeline" `Slow test_pipeline_spans_full_timeline;
        ] );
      ( "timeline",
        [
          tc "component arithmetic" `Quick test_timeline_math;
          tc "bridges missing stages" `Quick test_timeline_bridges_missing_stages;
          tc "first-wins except commit" `Quick test_timeline_first_wins_except_commit;
        ] );
      ( "json",
        [ tc "roundtrip and errors" `Quick test_json_roundtrip ] );
      ( "export",
        [
          tc "chrome trace structure" `Quick test_chrome_trace_structure;
          tc "metrics json structure" `Quick test_metrics_json_structure;
          tc "dst replay trace artifact" `Slow test_dst_replay_trace_artifact;
        ] );
    ]

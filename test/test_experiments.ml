(* Shape tests for the figure-reproduction harnesses: run each experiment
   in smoke mode and assert the qualitative claims of the paper hold in
   the measured output (who wins, by roughly what factor, orderings). *)

module E = Doradd_experiments

let checkb = Alcotest.check Alcotest.bool

let mode = E.Mode.Smoke

let test_fig2_shapes () =
  let r = E.Fig2.measure ~mode in
  let find label = List.find (fun row -> row.E.Fig2.label = label) r.E.Fig2.rows in
  let d_batch = find "contended-batches DORADD" in
  let c_batch = find "contended-batches Caracal" in
  let d_str = find "stragglers DORADD" in
  let c_str = find "stragglers Caracal" in
  checkb "DORADD well above Caracal (batches)" true
    (d_batch.E.Fig2.pct_of_ideal > 4.0 *. c_batch.E.Fig2.pct_of_ideal);
  checkb "Caracal near-serial (batches)" true (c_batch.E.Fig2.pct_of_ideal < 15.0);
  checkb "DORADD majority of ideal (batches)" true (d_batch.E.Fig2.pct_of_ideal > 60.0);
  checkb "DORADD resilient to stragglers" true
    (d_str.E.Fig2.pct_of_ideal > 2.0 *. c_str.E.Fig2.pct_of_ideal)

let test_fig6_shapes () =
  let r = E.Fig6.measure ~mode in
  Alcotest.(check int) "six workloads" 6 (List.length r);
  let get name = List.find (fun w -> w.E.Fig6.workload = name) r in
  let sys w label = List.find (fun s -> s.E.Sweep.label = label) w.E.Fig6.systems in
  let doradd w = sys w "DORADD" in
  let caracal w = List.find (fun s -> String.length s.E.Sweep.label >= 7 && String.sub s.E.Sweep.label 0 7 = "Caracal") w.E.Fig6.systems in
  (* uncontended YCSB: peaks within 2x, DORADD p99 >= 50x lower at mid load *)
  let yno = get "YCSB no-contention" in
  let d = doradd yno and c = caracal yno in
  checkb "peaks same order of magnitude" true
    (d.E.Sweep.max_tput < 2.0 *. c.E.Sweep.max_tput
    && c.E.Sweep.max_tput < 2.0 *. d.E.Sweep.max_tput);
  let p99_at points = (List.nth points 1).E.Sweep.p99 in
  checkb "DORADD tail orders of magnitude lower" true
    (p99_at c.E.Sweep.points > 50 * p99_at d.E.Sweep.points);
  (* contended YCSB: DORADD peak ahead *)
  let yhigh = get "YCSB high-contention" in
  checkb "DORADD ahead under contention" true
    ((doradd yhigh).E.Sweep.max_tput > 1.5 *. (caracal yhigh).E.Sweep.max_tput);
  (* 1-warehouse TPC-C: naive serialises, split rescues, split > Caracal *)
  let t1 = get "TPCC-NP 1 warehouse" in
  let naive = doradd t1 and split = sys t1 "DORADD-split" and car = caracal t1 in
  checkb "naive serialised" true (naive.E.Sweep.max_tput < 0.5e6);
  checkb "split much faster than naive" true (split.E.Sweep.max_tput > 4.0 *. naive.E.Sweep.max_tput);
  checkb "split beats Caracal" true (split.E.Sweep.max_tput > car.E.Sweep.max_tput)

let test_fig7_shapes () =
  let r = E.Fig7.measure ~mode in
  (* uniform: all systems within ~15% of each other at every load point *)
  let by_sys name systems =
    (List.find (fun s -> s.E.Sweep.label = name) systems).E.Sweep.points
  in
  let d = by_sys "DORADD" r.E.Fig7.latency_5us in
  let a = by_sys "async-mutex" r.E.Fig7.latency_5us in
  List.iter2
    (fun dp ap ->
      checkb "achieved close" true (dp.E.Sweep.achieved > 0.8 *. ap.E.Sweep.achieved))
    d a;
  (* the §5.2 headline: under the 1 ms SLA, determinism costs nothing *)
  let sla name = List.assoc name r.E.Fig7.sla_5us in
  checkb "DORADD SLA throughput >= nondet" true
    (sla "DORADD" >= 0.95 *. sla "async-mutex" && sla "DORADD" >= 0.95 *. sla "spinlock");
  checkb "SLA throughputs positive" true (sla "DORADD" > 0.5e6);
  (* theta sweep: uniform point near-equal; throughput decreases with skew *)
  (match r.E.Fig7.theta_sweep with
  | first :: rest ->
    checkb "uniform: determinism within 15%" true
      (first.E.Fig7.doradd < 1.15 *. first.E.Fig7.async_mutex
      && first.E.Fig7.async_mutex < 1.15 *. first.E.Fig7.doradd);
    let last = List.nth rest (List.length rest - 1) in
    checkb "skew reduces everyone" true
      (last.E.Fig7.doradd < first.E.Fig7.doradd
      && last.E.Fig7.async_mutex < first.E.Fig7.async_mutex)
  | [] -> Alcotest.fail "empty sweep")

let test_fig8_shapes () =
  let r = E.Fig8.measure ~mode in
  checkb "replication nearly free" true
    (r.E.Fig8.max_replicated > 0.9 *. r.E.Fig8.max_nonreplicated);
  checkb "replicated <= non-replicated" true
    (r.E.Fig8.max_replicated <= r.E.Fig8.max_nonreplicated +. 1.0);
  checkb "single thread ~an order slower" true
    (r.E.Fig8.max_replicated > 5.0 *. r.E.Fig8.max_single);
  (* replicated latency >= non-replicated at matching load fractions *)
  let p50s name =
    (List.find (fun s -> s.E.Sweep.label = name) r.E.Fig8.systems).E.Sweep.points
    |> List.map (fun p -> p.E.Sweep.p50)
  in
  List.iter2
    (fun nr rp -> checkb "backup RTT visible" true (rp >= nr))
    (p50s "DORADD non-replicated") (p50s "DORADD replicated")

let test_fig9_shapes () =
  let r = E.Fig9.measure ~mode in
  (* keyspace sweep: at the largest keyspace the ordering is
     3-core >= 2-core >= prefetch >= no-opt, with a wide total spread *)
  let last = List.nth r.E.Fig9.keyspace_sweep (List.length r.E.Fig9.keyspace_sweep - 1) in
  checkb "3c >= 2c" true (last.E.Fig9.three_core >= last.E.Fig9.two_core);
  checkb "2c >= prefetch" true (last.E.Fig9.two_core >= last.E.Fig9.prefetch);
  checkb "prefetch >= no-opt" true (last.E.Fig9.prefetch >= last.E.Fig9.no_opt);
  checkb "pipelining matters at scale" true (last.E.Fig9.three_core > 3.0 *. last.E.Fig9.no_opt);
  (* keys sweep decreasing for every variant *)
  let rec decreasing f = function
    | a :: (b :: _ as rest) -> f a >= f b && decreasing f rest
    | _ -> true
  in
  checkb "keys sweep decreasing (3c)" true
    (decreasing (fun x -> x.E.Fig9.three_core) r.E.Fig9.keys_sweep);
  checkb "keys sweep decreasing (no-opt)" true
    (decreasing (fun x -> x.E.Fig9.no_opt) r.E.Fig9.keys_sweep)

let test_fig9_consistent_with_pipeline_sim () =
  (* the analytic bottleneck numbers of Figure 9 must agree with the
     batch-accurate pipeline simulation fed the same stage costs *)
  let module B = Doradd_baselines in
  List.iter
    (fun (keyspace, keys_per_req) ->
      List.iter
        (fun variant ->
          let costs =
            Array.of_list (B.Dispatch_model.stage_costs variant ~keyspace ~keys_per_req)
          in
          (* stage_costs already amortise the signal: strip it for the sim *)
          let signal = float_of_int B.Params.queue_signal_ns /. 8.0 in
          let stripped =
            if Array.length costs > 1 then Array.map (fun c -> c -. signal) costs else costs
          in
          let sim =
            B.Pipeline_sim.max_throughput
              (B.Pipeline_sim.config ~signal_ns:(float_of_int B.Params.queue_signal_ns) stripped)
          in
          let analytic = B.Dispatch_model.max_throughput variant ~keyspace ~keys_per_req in
          checkb
            (Printf.sprintf "fig9 %s ks=%d k=%d" (B.Dispatch_model.variant_name variant) keyspace
               keys_per_req)
            true
            (Float.abs (sim -. analytic) /. analytic < 0.05))
        B.Dispatch_model.[ Two_core; Three_core ])
    [ (1_000, 10); (10_000_000, 10); (10_000_000, 40) ]

let test_fig10_shapes () =
  let rows = E.Fig10.measure ~mode in
  let rec check = function
    | a :: (b :: _ as rest) ->
      checkb "read decreasing" true (b.E.Fig10.read_tput < a.E.Fig10.read_tput);
      checkb "write decreasing" true (b.E.Fig10.write_tput < a.E.Fig10.write_tput);
      check rest
    | _ -> ()
  in
  check rows;
  List.iter
    (fun row ->
      if row.E.Fig10.cores > 1 then
        checkb "write below read" true (row.E.Fig10.write_tput < row.E.Fig10.read_tput))
    rows

let test_efficiency_shapes () =
  let r = E.Efficiency.measure ~mode in
  let tput cores rows = (List.find (fun x -> x.E.Efficiency.cores = cores) rows).E.Efficiency.throughput in
  (* DORADD saturates: 8 workers within 5% of 20 workers *)
  checkb "8 workers ~= 20 workers" true
    (tput 8 r.E.Efficiency.doradd > 0.9 *. tput 20 r.E.Efficiency.doradd);
  checkb "2 workers far below" true
    (tput 2 r.E.Efficiency.doradd < 0.5 *. tput 20 r.E.Efficiency.doradd);
  (* Caracal scales ~linearly: 16 cores ~ 0.7x of 23 *)
  let ratio = tput 16 r.E.Efficiency.caracal /. tput 23 r.E.Efficiency.caracal in
  checkb "caracal 16/23 ~ 0.7" true (ratio > 0.6 && ratio < 0.8)

let test_dps_compare_shapes () =
  let results = E.Dps_compare.measure ~mode in
  Alcotest.(check int) "three workloads" 3 (List.length results);
  List.iter
    (fun r ->
      let find name = List.find (fun x -> x.E.Dps_compare.system = name) r.E.Dps_compare.rows in
      let doradd = find "DORADD" and calvin = find "Calvin ES=10k" and single = find "single-thread" in
      checkb "DORADD >= Calvin peak" true
        (doradd.E.Dps_compare.peak >= 0.95 *. calvin.E.Dps_compare.peak);
      checkb "every DPS beats single uncontended or ties" true
        (doradd.E.Dps_compare.peak > single.E.Dps_compare.peak);
      checkb "DORADD tail far below epoch systems" true
        (calvin.E.Dps_compare.p99_at_80 > 20 * doradd.E.Dps_compare.p99_at_80))
    results;
  (* Calvin's lock manager caps it ~2 Mrps uncontended *)
  let unc = List.hd results in
  let calvin = List.find (fun x -> x.E.Dps_compare.system = "Calvin ES=10k") unc.E.Dps_compare.rows in
  checkb "Calvin manager-bound" true (calvin.E.Dps_compare.peak < 2.3e6)

let test_breakdown_shapes () =
  let results = E.Breakdown.measure ~mode in
  Alcotest.(check int) "two workloads" 2 (List.length results);
  let get name = List.find (fun r -> r.E.Breakdown.workload = name) results in
  let unc = get "YCSB no-contention" and cont = get "YCSB high-contention" in
  (* uncontended: no DAG waits; contended: DAG waits dominate the tail *)
  List.iter
    (fun row -> checkb "no dependency waits uncontended" true (row.E.Breakdown.dag_wait_p99 < 1_000))
    unc.E.Breakdown.rows;
  let high_load = List.nth cont.E.Breakdown.rows 2 in
  checkb "contended tail dominated by DAG wait" true
    (high_load.E.Breakdown.dag_wait_p99 > high_load.E.Breakdown.dispatch_wait_p99
    && high_load.E.Breakdown.dag_wait_p99 > high_load.E.Breakdown.execution_p99);
  (* components are consistent with the total *)
  List.iter
    (fun row ->
      checkb "components below total" true
        (row.E.Breakdown.dag_wait_p99 <= row.E.Breakdown.total_p99
        && row.E.Breakdown.execution_p99 <= row.E.Breakdown.total_p99))
    (unc.E.Breakdown.rows @ cont.E.Breakdown.rows);
  (* acceptance gate: the span-derived decomposition (doradd_obs tracer)
     must reproduce the ad-hoc one within 5% on every component *)
  let drift = E.Breakdown.max_drift results in
  checkb (Printf.sprintf "span-vs-adhoc drift %.3f within 5%%" drift) true (drift <= 0.05)

let test_ablations_shapes () =
  let r = E.Ablations.measure ~mode in
  checkb "rw extension pays on read-hot load" true
    (r.E.Ablations.rw.E.Ablations.read_write > 3.0 *. r.E.Ablations.rw.E.Ablations.all_write);
  checkb "work conservation cuts tail latency" true
    (r.E.Ablations.conserve.E.Ablations.static_p99
    > 5 * r.E.Ablations.conserve.E.Ablations.wc_p99);
  (* bounded admission beats unbounded under skew *)
  let bounded =
    List.find (fun w -> w.E.Ablations.window = 32) r.E.Ablations.windows
  in
  let unbounded =
    List.find (fun w -> w.E.Ablations.window = 1_000_000) r.E.Ablations.windows
  in
  checkb "unbounded parking convoys" true
    (bounded.E.Ablations.throughput > 1.2 *. unbounded.E.Ablations.throughput)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "experiments"
    [
      ( "shapes",
        [
          tc "fig2" `Slow test_fig2_shapes;
          tc "fig6" `Slow test_fig6_shapes;
          tc "fig7" `Slow test_fig7_shapes;
          tc "fig8" `Slow test_fig8_shapes;
          tc "fig9" `Quick test_fig9_shapes;
          tc "fig9 = pipeline sim" `Quick test_fig9_consistent_with_pipeline_sim;
          tc "fig10" `Quick test_fig10_shapes;
          tc "efficiency" `Slow test_efficiency_shapes;
          tc "ablations" `Slow test_ablations_shapes;
          tc "dps-compare" `Slow test_dps_compare_shapes;
          tc "breakdown" `Slow test_breakdown_shapes;
        ] );
    ]
